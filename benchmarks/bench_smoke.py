"""Smoke benchmark for the engine and radio hot paths (``make bench-smoke``).

Times, at a seeded 2000-UE scale (best-of-N wall time, since a shared
box is noisy):

* the single-shot DMRA allocation, optimized vs reference engine (PR 1);
* a small sweep at ``workers=1`` vs ``workers=4`` (PR 1);
* radio-map construction, vectorized :func:`build_radio_map` vs the
  scalar :func:`build_radio_map_reference` loop, with link-for-link
  parity asserted in-process (PR 2);
* a short mobility trace, incremental epoch updates vs full rebuilds,
  with identical per-epoch records asserted (PR 2);
* telemetry overhead: the cost of a disabled (null) span on the hot
  path, and the 2000-UE engine run with a live recorder vs disabled
  telemetry (PR 3).

Emits ``BENCH_pr3.json`` at the repo root and fails fast on:

* **behaviour** — the optimized assignment's digest must equal the
  recorded parity fixture (``benchmarks/results/parity_pr1.json``;
  regenerate deliberately with ``BENCH_WRITE_FIXTURE=1``), the radio
  maps must agree link for link (exact integer fields, <=1e-9 relative
  on floats), and the mobility modes must agree epoch for epoch;
* **performance** — the matching speedup must stay >= its floor
  (default 2.0, ``BENCH_MIN_SPEEDUP``), the radio-map speedup >= its
  floor (default 5.0, ``BENCH_MIN_MAP_SPEEDUP``), a disabled span must
  cost <= ``BENCH_MAX_NULL_SPAN_US`` microseconds (default 2.0), and —
  when the committed ``BENCH_pr2.json`` baseline is present — the
  telemetry-disabled engine and radio *speedup ratios* (which cancel
  box-speed differences; see :func:`_check_baseline`) must not fall
  more than ``BENCH_MAX_PR2_REGRESSION`` below it (default 0.3;
  tighten to 0.03 on a quiet box).

Exit status is non-zero on any failure.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from pathlib import Path

# Runnable straight from a checkout (``make bench-smoke``) without an
# editable install.
_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.dmra import DMRAAllocator, DMRAPolicy
from repro.core.matching import IterativeMatchingEngine
from repro.core.matching_reference import ReferenceMatchingEngine
from repro.dynamics.mobility import run_mobility
from repro.econ.pricing import PaperPricing
from repro.obs.telemetry import Recorder, get_telemetry, telemetry_session
from repro.radio.channel import build_radio_map, build_radio_map_reference
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario
from repro.sim.sweep import SweepSpec, run_sweep

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE_PATH = Path(__file__).parent / "results" / "parity_pr1.json"
OUTPUT_PATH = REPO_ROOT / "BENCH_pr3.json"
BASELINE_PATH = REPO_ROOT / "BENCH_pr2.json"

UE_COUNT = 2000
SEED = 1
FLOAT_PARITY_REL_TOL = 1e-9


def _digest(assignment) -> str:
    payload = repr((
        tuple(
            (g.bs_id, g.ue_id, g.service_id, g.crus, g.rrbs)
            for g in assignment.grants
        ),
        tuple(sorted(assignment.cloud_ue_ids)),
    )).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def _best_of(fn, repeats: int) -> tuple[float, object]:
    """Best wall time over ``repeats`` runs, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _best_of_interleaved(
    fn_a, fn_b, repeats: int
) -> tuple[float, object, float, object]:
    """Best-of wall times for two functions, alternating runs so a load
    spike on a shared box cannot penalize only one side."""
    best_a = best_b = float("inf")
    result_a = result_b = None
    for _ in range(repeats):
        start = time.perf_counter()
        result_a = fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        result_b = fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, result_a, best_b, result_b


def _time_single_shot() -> dict:
    scenario = build_scenario(ScenarioConfig.paper(), UE_COUNT, SEED)

    def optimized():
        return IterativeMatchingEngine(
            DMRAPolicy(pricing=scenario.pricing)
        ).run(scenario.network, scenario.radio_map)

    def reference():
        return ReferenceMatchingEngine(
            DMRAPolicy(pricing=scenario.pricing)
        ).run(scenario.network, scenario.radio_map)

    opt_s, opt_assignment, ref_s, ref_assignment = _best_of_interleaved(
        optimized, reference, repeats=8
    )
    assert opt_assignment.grants == ref_assignment.grants
    assert opt_assignment.cloud_ue_ids == ref_assignment.cloud_ue_ids
    return {
        "ue_count": UE_COUNT,
        "seed": SEED,
        "optimized_wall_s": round(opt_s, 4),
        "reference_wall_s": round(ref_s, 4),
        "speedup": round(ref_s / opt_s, 2),
        "rounds": opt_assignment.rounds,
        "edge_served": len(opt_assignment.grants),
        "cloud_bound": len(opt_assignment.cloud_ue_ids),
        "digest": _digest(opt_assignment),
    }


def _assert_map_parity(vectorized, reference) -> None:
    """Link-for-link parity: exact ints/candidate sets, tight floats."""
    assert len(vectorized) == len(reference), "link counts differ"
    ref_links = {(m.ue_id, m.bs_id): m for m in reference}
    vec_links = {(m.ue_id, m.bs_id): m for m in vectorized}
    assert vec_links.keys() == ref_links.keys(), "candidate sets differ"
    for key, ref in ref_links.items():
        vec = vec_links[key]
        assert vec.rrbs_required == ref.rrbs_required, f"rrbs differ at {key}"
        for field in ("distance_m", "sinr_linear", "per_rrb_rate_bps"):
            a, b = getattr(vec, field), getattr(ref, field)
            tolerance = FLOAT_PARITY_REL_TOL * max(abs(a), abs(b), 1e-30)
            assert abs(a - b) <= tolerance, f"{field} differs at {key}"


def _time_radio_map() -> dict:
    config = ScenarioConfig.paper()
    scenario = build_scenario(config, UE_COUNT, SEED)
    budget = config.link_budget()
    rate_model = config.rate_model_fn()

    def vectorized():
        return build_radio_map(
            scenario.network, budget, rate_model=rate_model
        )

    def reference():
        return build_radio_map_reference(
            scenario.network, budget, rate_model=rate_model
        )

    # The vectorized build is ~3 ms, so its best-of needs many repeats
    # before the baseline ratio check stops flapping on timer noise.
    vec_s, vec_map, ref_s, ref_map = _best_of_interleaved(
        vectorized, reference, repeats=15
    )
    _assert_map_parity(vec_map, ref_map)
    return {
        "ue_count": UE_COUNT,
        "seed": SEED,
        "links": len(vec_map),
        "vectorized_wall_s": round(vec_s, 4),
        "reference_wall_s": round(ref_s, 4),
        "speedup": round(ref_s / vec_s, 2),
        "note": (
            "parity verified link-for-link: exact rrbs_required and "
            "candidate sets, floats to <=1e-9 relative"
        ),
    }


def _time_mobility() -> dict:
    config = ScenarioConfig.paper()
    ue_count, epochs, duration_s, seed = 500, 5, 30.0, 2

    def incremental():
        return run_mobility(
            config, ue_count, epochs, duration_s, seed, incremental=True
        )

    def full_rebuild():
        return run_mobility(
            config, ue_count, epochs, duration_s, seed, incremental=False
        )

    inc_s, inc_outcome, full_s, full_outcome = _best_of_interleaved(
        incremental, full_rebuild, repeats=2
    )
    assert inc_outcome.records == full_outcome.records, (
        "incremental mobility diverged from the full-rebuild path"
    )
    return {
        "ue_count": ue_count,
        "epochs": epochs,
        "seed": seed,
        "incremental_wall_s": round(inc_s, 4),
        "full_rebuild_wall_s": round(full_s, 4),
        "speedup": round(full_s / inc_s, 2),
        "note": "per-epoch records verified identical across both modes",
    }


def _sweep_spec() -> SweepSpec:
    config = ScenarioConfig.paper()
    return SweepSpec(
        xs=(300.0, 500.0),
        seeds=(0, 1, 2, 3),
        scenario_factory=lambda x, seed: build_scenario(
            config, int(x), seed
        ),
        allocator_factories={
            "dmra": lambda _x: DMRAAllocator(pricing=PaperPricing())
        },
        metric=lambda m: m.total_profit,
    )


def _time_sweep() -> dict:
    serial_s, serial = _best_of(
        lambda: run_sweep(_sweep_spec(), workers=1), repeats=2
    )
    parallel_s, parallel = _best_of(
        lambda: run_sweep(_sweep_spec(), workers=4), repeats=2
    )
    assert serial["dmra"].means == parallel["dmra"].means
    return {
        "grid_cells": 8,
        "workers1_wall_s": round(serial_s, 4),
        "workers4_wall_s": round(parallel_s, 4),
        "workers4_speedup": round(serial_s / parallel_s, 2),
        "cpu_count": os.cpu_count(),
        "note": (
            "workers=4 results verified identical to workers=1; "
            "scaling is bounded by the physical core count above"
        ),
    }


def _time_telemetry(single: dict) -> dict:
    """Cost of telemetry: disabled spans, and recording on the hot path."""
    tel = get_telemetry()
    assert not tel.enabled, "bench must start with the null backend"
    iterations = 200_000

    def spin():
        for _ in range(iterations):
            with tel.span("bench", x=1):
                pass

    null_s, _ = _best_of(spin, repeats=3)
    null_span_us = null_s / iterations * 1e6

    scenario = build_scenario(ScenarioConfig.paper(), UE_COUNT, SEED)

    def recorded():
        with telemetry_session(Recorder()):
            return IterativeMatchingEngine(
                DMRAPolicy(pricing=scenario.pricing)
            ).run(scenario.network, scenario.radio_map)

    recorded_s, _ = _best_of(recorded, repeats=5)
    disabled_s = single["optimized_wall_s"]
    return {
        "null_span_us": round(null_span_us, 4),
        "recorded_engine_wall_s": round(recorded_s, 4),
        "disabled_engine_wall_s": disabled_s,
        "recording_overhead_pct": round(
            (recorded_s / disabled_s - 1.0) * 100.0, 1
        ),
        "note": (
            "null_span_us is the per-call cost of an instrumented site "
            "with telemetry off (the default); the engine rows compare "
            "a live Recorder against the disabled path"
        ),
    }


def _check_baseline(report: dict) -> str | None:
    """Disabled-path timings must hold the line against BENCH_pr2.json.

    Absolute wall times do not transfer across boxes or even across
    load conditions on one box, so the comparison uses the speedup
    *ratios*: the optimized and reference implementations are timed
    interleaved under identical conditions, so box-speed drift cancels
    and any slowdown the (disabled) instrumentation added to the
    optimized path shows up directly as a ratio drop.
    """
    if not BASELINE_PATH.exists():
        return None
    # Even the ratios scatter +-30% between runs when the underlying
    # (1-vCPU, shared-host) box has noisy neighbours — identical code
    # measured anywhere from 2.1x to 3.5x on the engine — so the
    # default gate is a loose backstop; tighten to the real criterion
    # with ``BENCH_MAX_PR2_REGRESSION=0.03`` on a quiet box.
    max_regression = float(
        os.environ.get("BENCH_MAX_PR2_REGRESSION", "0.3")
    )
    baseline = json.loads(BASELINE_PATH.read_text())
    checks = [
        (
            "matching-engine speedup",
            report["single_shot_dmra"]["speedup"],
            baseline["single_shot_dmra"]["speedup"],
        ),
        (
            "radio-map speedup",
            report["radio_map"]["speedup"],
            baseline["radio_map"]["speedup"],
        ),
    ]
    for name, now, then in checks:
        if now < then * (1.0 - max_regression):
            return (
                f"PERF REGRESSION vs {BASELINE_PATH.name}: {name} "
                f"{now}x fell more than {max_regression:.0%} below "
                f"baseline {then}x"
            )
    return None


def main() -> int:
    radio = _time_radio_map()
    single = _time_single_shot()
    sweep = _time_sweep()
    mobility = _time_mobility()
    telemetry = _time_telemetry(single)
    report = {
        "bench": "pr3-smoke",
        "radio_map": radio,
        "single_shot_dmra": single,
        "sweep_scaling": sweep,
        "mobility_epochs": mobility,
        "telemetry": telemetry,
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    if os.environ.get("BENCH_WRITE_FIXTURE"):
        FIXTURE_PATH.write_text(json.dumps(
            {"ue_count": UE_COUNT, "seed": SEED, "digest": single["digest"]},
            indent=2,
        ) + "\n")
        print(f"wrote parity fixture {FIXTURE_PATH}")
        return 0

    fixture = json.loads(FIXTURE_PATH.read_text())
    if single["digest"] != fixture["digest"]:
        print(
            f"PARITY FAILURE: digest {single['digest']} != "
            f"fixture {fixture['digest']}",
            file=sys.stderr,
        )
        return 1

    # 2.0 rather than the ~3x the engine achieves on a quiet box: the
    # original floor (3.0) sat directly on the recorded baseline
    # (3.03x), and best-of timings of *identical code* on this shared
    # 1-vCPU box scatter from 2.1x to 3.5x run to run.
    floor = float(os.environ.get("BENCH_MIN_SPEEDUP", "2.0"))
    if single["speedup"] < floor:
        print(
            f"PERF REGRESSION: matching speedup {single['speedup']}x "
            f"< {floor}x",
            file=sys.stderr,
        )
        return 1
    map_floor = float(os.environ.get("BENCH_MIN_MAP_SPEEDUP", "5.0"))
    if radio["speedup"] < map_floor:
        print(
            f"PERF REGRESSION: radio-map speedup {radio['speedup']}x "
            f"< {map_floor}x",
            file=sys.stderr,
        )
        return 1
    null_ceiling = float(os.environ.get("BENCH_MAX_NULL_SPAN_US", "2.0"))
    if telemetry["null_span_us"] > null_ceiling:
        print(
            f"PERF REGRESSION: disabled span costs "
            f"{telemetry['null_span_us']}us > {null_ceiling}us",
            file=sys.stderr,
        )
        return 1
    baseline_failure = _check_baseline(report)
    if baseline_failure is not None:
        print(baseline_failure, file=sys.stderr)
        return 1
    print(
        f"ok: parity digest matches, matching {single['speedup']}x, "
        f"radio map {radio['speedup']}x, "
        f"mobility epochs {mobility['speedup']}x, "
        f"null span {telemetry['null_span_us']}us"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
