"""Benches for the extension experiments (`ext-*`).

One bench per registered extension: runs the sweep at the bench scale,
asserts its headline shape, and persists the series next to the figure
CSVs so `benchmarks/results/` regenerates everything EXPERIMENTS.md
cites.
"""

from repro.experiments.extensions import get_extension
from repro.experiments.io import write_series_csv


def run_extension(benchmark, exp_id, bench_scale, results_dir):
    experiment = get_extension(exp_id)
    result = benchmark.pedantic(
        lambda: experiment.run(bench_scale), rounds=1, iterations=1
    )
    write_series_csv(
        results_dir / f"{exp_id}.csv",
        [result[label] for label in result.labels()],
        x_header=experiment.x_label,
    )
    return result


def test_ext_iota(benchmark, bench_scale, results_dir):
    result = run_extension(benchmark, "ext-iota", bench_scale, results_dir)
    same_sp = result["same-sp %"]
    assert same_sp.means[-1] > same_sp.means[0]


def test_ext_coverage(benchmark, bench_scale, results_dir):
    result = run_extension(benchmark, "ext-coverage", bench_scale, results_dir)
    series = result["dmra"]
    assert list(series.means) == sorted(series.means)


def test_ext_noise(benchmark, bench_scale, results_dir):
    result = run_extension(benchmark, "ext-noise", bench_scale, results_dir)
    paper = result["paper -170 dBm"]
    thermal = result["thermal floor"]
    for x in paper.xs:
        assert paper.value_at(x).mean >= thermal.value_at(x).mean


def test_ext_blocking(benchmark, bench_scale, results_dir):
    result = run_extension(benchmark, "ext-blocking", bench_scale, results_dir)
    series = result["blocking %"]
    assert series.means[-1] >= series.means[0]


def test_ext_scaling(benchmark, bench_scale, results_dir):
    result = run_extension(benchmark, "ext-scaling", bench_scale, results_dir)
    assert result["dmra"].means[-1] >= result["dmra"].means[0]


def test_ext_staleness(benchmark, bench_scale, results_dir):
    result = run_extension(benchmark, "ext-staleness", bench_scale, results_dir)
    rounds = result["rounds"]
    assert rounds.means[-1] >= rounds.means[0]
    profit = result["profit"]
    assert min(profit.means) >= 0.95 * max(profit.means)


def test_ext_failures(benchmark, bench_scale, results_dir):
    result = run_extension(benchmark, "ext-failures", bench_scale, results_dir)
    retained = result["profit retained %"]
    assert retained.means[0] == 100.0
    assert retained.means[-1] <= retained.means[0]
