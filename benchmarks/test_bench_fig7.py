"""Bench for Fig. 7: total forwarded traffic vs rho (iota=1.1, 1000 UEs).

The paper: larger rho -> more tasks absorbed by nearby BSs -> the total
traffic forwarded to remote clouds decreases.
"""

from conftest import run_figure_bench


def test_fig7_forwarded_traffic_vs_rho(benchmark, bench_scale, results_dir):
    result = run_figure_bench(benchmark, "fig7", bench_scale, results_dir)

    series = result["dmra"]
    # Overloaded at 1000 UEs: some forwarding must occur everywhere.
    assert all(point.value.mean > 0 for point in series.points)
    low_rho = series.value_at(min(series.xs)).mean
    high_rho = series.value_at(max(series.xs)).mean
    # The paper's direction: resource-aware proposals cut forwarded load.
    assert high_rho <= low_rho
