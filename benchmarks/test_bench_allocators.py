"""Micro-benchmarks: raw allocator runtime on one paper-sized scenario.

Not a paper figure — this measures the cost of each scheme (and of the
message-passing DMRA variant) at 600 UEs so regressions in the matching
engine show up as timing changes.
"""

import pytest

from repro.baselines.dcsp import DCSPAllocator
from repro.baselines.greedy import GreedyProfitAllocator
from repro.baselines.nonco import NonCoAllocator
from repro.baselines.random_alloc import RandomAllocator
from repro.core.agents import DecentralizedDMRAAllocator
from repro.core.dmra import DMRAAllocator
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(ScenarioConfig.paper(), ue_count=600, seed=1)


def _bench(benchmark, scenario, allocator):
    assignment = benchmark(
        lambda: allocator.allocate(scenario.network, scenario.radio_map)
    )
    assignment.validate(scenario.network, scenario.radio_map)


def test_dmra_runtime(benchmark, scenario):
    _bench(benchmark, scenario, DMRAAllocator(pricing=scenario.pricing))


def test_dmra_agents_runtime(benchmark, scenario):
    _bench(
        benchmark, scenario, DecentralizedDMRAAllocator(pricing=scenario.pricing)
    )


def test_dcsp_runtime(benchmark, scenario):
    _bench(benchmark, scenario, DCSPAllocator())


def test_nonco_runtime(benchmark, scenario):
    _bench(benchmark, scenario, NonCoAllocator())


def test_greedy_runtime(benchmark, scenario):
    _bench(benchmark, scenario, GreedyProfitAllocator(pricing=scenario.pricing))


def test_random_runtime(benchmark, scenario):
    _bench(benchmark, scenario, RandomAllocator(seed=1))


def test_scenario_build_runtime(benchmark):
    benchmark(lambda: build_scenario(ScenarioConfig.paper(), 600, 1))
