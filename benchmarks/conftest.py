"""Shared benchmark fixtures.

Figure benches honour ``BENCH_SCALE``:

* ``reduced`` (default) — same sweep structure at fewer grid points and
  seeds; finishes in seconds and still exhibits every qualitative shape.
* ``paper`` — the full published sweep (6 UE grid points / 10 rho
  values, 5 seeds).

Every figure bench writes its series to ``benchmarks/results/<id>.csv``
so the numbers behind EXPERIMENTS.md are regenerable artifacts.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.figures import Scale

RESULTS_DIR = Path(__file__).parent / "results"


def _reduced_scale() -> Scale:
    return Scale(
        ue_counts=(400, 600, 900),
        rho_values=(0.0, 10.0, 100.0, 500.0),
        rho_ue_count=1000,
        seeds=(0, 1),
    )


@pytest.fixture(scope="session")
def bench_scale() -> Scale:
    mode = os.environ.get("BENCH_SCALE", "reduced")
    if mode == "paper":
        return Scale.paper()
    return _reduced_scale()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Per-scale output directory, so paper-scale CSVs (the ones
    EXPERIMENTS.md cites) are never clobbered by quick reduced runs."""
    mode = os.environ.get("BENCH_SCALE", "reduced")
    target = RESULTS_DIR / mode
    target.mkdir(parents=True, exist_ok=True)
    return target


def run_figure_bench(benchmark, exp_id: str, scale: Scale, results_dir: Path):
    """Benchmark one figure experiment and persist its series as CSV."""
    from repro.experiments.figures import get_experiment
    from repro.experiments.io import write_series_csv

    experiment = get_experiment(exp_id)
    result = benchmark.pedantic(
        lambda: experiment.run(scale), rounds=1, iterations=1
    )
    series = [result[label] for label in result.labels()]
    write_series_csv(
        results_dir / f"{exp_id}.csv", series, x_header=experiment.x_label
    )
    return result
