"""Scale benchmark for the sharded runner (``make bench-scale``).

Two measurements, both seeded:

* **headline** — a 100k-UE, 2500-BS sharded run (15 km side, the
  paper's BS grid pitch) must finish inside a fixed wall-clock and
  peak-RSS envelope.  Peak RSS is taken as the max of the parent's
  ``ru_maxrss`` and the largest forked shard worker's
  (``RUSAGE_CHILDREN``), so the cap covers the whole fork pool.
* **shard sweep** — the same scenario at a smaller population across
  several shard counts; total SP profit must stay within a relative
  deviation bound of the single-shard result (which equals the
  monolithic allocation bit-for-bit; see
  ``tests/integration/test_scale_sharded.py``).

Emits ``BENCH_pr5.json`` at the repo root and exits non-zero when:

* the headline run exceeds ``BENCH_SCALE_MAX_SECONDS`` (default 120)
  or ``BENCH_SCALE_MAX_RSS_MB`` (default 1024);
* any UE goes unaccounted (grants + cloud != population);
* a sweep point's profit deviates from the single-shard profit by
  more than ``BENCH_SCALE_MAX_DEVIATION`` (default 0.01).

Knobs: ``BENCH_SCALE_UES`` (headline population, default 100000),
``BENCH_SCALE_SHARDS`` (default 9), ``BENCH_SCALE_WORKERS``
(default 4), ``BENCH_SCALE_SWEEP_UES`` (default 20000),
``BENCH_SCALE_KERNEL`` (per-shard matching kernel, default
``object`` — the PR 5 envelope; ``soa`` benches the SoA kernel, which
is bit-identical per shard, so every record carries a ``kernel``
column for apples-to-apples comparison).
"""

from __future__ import annotations

import json
import os
import resource
import sys
from pathlib import Path

# Runnable straight from a checkout without an editable install.
_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.scale import run_sharded
from repro.sim.config import ScenarioConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_pr5.json"

# 15 km side fits the 300 m BS grid pitch at 2500 stations (50 x 50).
CONFIG = ScenarioConfig.paper(region_side_m=15000.0, bs_per_sp=500)
SEED = 1


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, default))
    except ValueError:
        return default


def _peak_rss_mb() -> tuple[float, float]:
    """(parent, largest reaped child) peak RSS in MB (Linux: KB units)."""
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return self_kb / 1024.0, child_kb / 1024.0


def _outcome_record(outcome, kernel: str) -> dict:
    return {
        "shards": outcome.shard_count,
        "kernel": kernel,
        "workers": outcome.workers,
        "wall_s": round(outcome.wall_time_s, 3),
        "partition_s": round(outcome.partition_time_s, 3),
        "match_s": round(outcome.match_time_s, 3),
        "reconcile_s": round(outcome.reconcile_time_s, 3),
        "total_profit": round(outcome.metrics.total_profit, 2),
        "edge_served": outcome.metrics.edge_served,
        "cloud_forwarded": outcome.metrics.cloud_forwarded,
        "evictions": outcome.total_evictions,
        "reproposal_grants": outcome.reproposal_grants,
        "shard_ue_min": min(outcome.shard_ue_counts),
        "shard_ue_max": max(outcome.shard_ue_counts),
        "halo_bs_min": min(outcome.shard_bs_counts),
        "halo_bs_max": max(outcome.shard_bs_counts),
    }


def main() -> int:
    headline_ues = _env_int("BENCH_SCALE_UES", 100_000)
    headline_shards = _env_int("BENCH_SCALE_SHARDS", 9)
    workers = _env_int("BENCH_SCALE_WORKERS", 4)
    sweep_ues = _env_int("BENCH_SCALE_SWEEP_UES", 20_000)
    kernel = os.environ.get("BENCH_SCALE_KERNEL", "object")
    max_seconds = _env_float("BENCH_SCALE_MAX_SECONDS", 120.0)
    max_rss_mb = _env_float("BENCH_SCALE_MAX_RSS_MB", 1024.0)
    max_deviation = _env_float("BENCH_SCALE_MAX_DEVIATION", 0.01)

    failures: list[str] = []

    # --- shard sweep (smaller population, several shard counts) ------
    sweep = []
    baseline_profit = None
    for shards in (1, 4, 9):
        outcome = run_sharded(
            CONFIG,
            ue_count=sweep_ues,
            seed=SEED,
            shards=shards,
            workers=workers,
            kernel=kernel,
        )
        record = _outcome_record(outcome, kernel)
        if baseline_profit is None:
            baseline_profit = outcome.metrics.total_profit
            record["deviation"] = 0.0
        else:
            deviation = (
                abs(outcome.metrics.total_profit - baseline_profit)
                / baseline_profit
            )
            record["deviation"] = round(deviation, 6)
            if deviation > max_deviation:
                failures.append(
                    f"sweep shards={shards}: profit deviation "
                    f"{deviation:.4f} > {max_deviation}"
                )
        sweep.append(record)
        print(
            f"sweep  shards={shards:2d}  wall={record['wall_s']:7.2f}s  "
            f"profit={record['total_profit']:12.2f}  "
            f"evictions={record['evictions']}"
        )

    # --- headline: 100k UEs inside the envelope ----------------------
    outcome = run_sharded(
        CONFIG,
        ue_count=headline_ues,
        seed=SEED,
        shards=headline_shards,
        workers=workers,
        kernel=kernel,
    )
    rss_self, rss_child = _peak_rss_mb()
    peak_rss = max(rss_self, rss_child)
    headline = _outcome_record(outcome, kernel)
    headline["ues"] = headline_ues
    headline["peak_rss_self_mb"] = round(rss_self, 1)
    headline["peak_rss_child_mb"] = round(rss_child, 1)
    headline["peak_rss_mb"] = round(peak_rss, 1)
    print(
        f"headline  ues={headline_ues}  shards={headline_shards}  "
        f"wall={headline['wall_s']:.2f}s  peak_rss={peak_rss:.0f}MB  "
        f"profit={headline['total_profit']:.2f}"
    )

    accounted = (
        len(outcome.assignment.grants)
        + len(outcome.assignment.cloud_ue_ids)
    )
    if accounted != headline_ues:
        failures.append(
            f"headline: {accounted} UEs accounted != {headline_ues}"
        )
    if outcome.wall_time_s > max_seconds:
        failures.append(
            f"headline: wall {outcome.wall_time_s:.1f}s > "
            f"{max_seconds:.0f}s cap"
        )
    if peak_rss > max_rss_mb:
        failures.append(
            f"headline: peak RSS {peak_rss:.0f}MB > {max_rss_mb:.0f}MB cap"
        )

    report = {
        "bench": "scale",
        "seed": SEED,
        "kernel": kernel,
        "scenario": {
            "region_side_m": 15000.0,
            "bs_per_sp": 500,
            "bs_count": 2500,
        },
        "caps": {
            "max_seconds": max_seconds,
            "max_rss_mb": max_rss_mb,
            "max_deviation": max_deviation,
        },
        "sweep_ues": sweep_ues,
        "sweep": sweep,
        "headline": headline,
        "failures": failures,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("scale bench OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
