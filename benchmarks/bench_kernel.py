"""Matching-kernel benchmark: SoA vs object engine (``make bench-kernel``).

Three measurements, all seeded:

* **kernel duel** — one mid-size monolithic scenario (12k UEs, 200 BSs
  by default) matched by both kernels on the same network and radio
  map.  The assignments must be **bit-identical** (grants tuple, cloud
  set, rounds — the SoA parity contract), and the SoA kernel must beat
  the object engine by at least ``BENCH_KERNEL_MIN_SPEEDUP``.
* **headline** — the PR 5 scale scenario (100k UEs, 2500 BSs, 9
  shards) run with ``kernel="soa"``: the matching phase must finish
  under ``BENCH_KERNEL_MAX_MATCH_SECONDS`` (default 10 — the issue's
  "well under 10 s" target against PR 5's ~24.7 s object-kernel
  ``match_s``) inside the unchanged peak-RSS cap.
* **deviation** — the same 100k population single-shard (bit-identical
  to the monolithic allocation) vs 9 shards, both on the SoA kernel;
  total SP profit must agree within ``BENCH_KERNEL_MAX_DEVIATION``.

Emits ``BENCH_pr6.json`` at the repo root and exits non-zero on parity
drift, a missed floor/cap, or unaccounted UEs.

Knobs: ``BENCH_KERNEL_UES`` (duel population, default 12000),
``BENCH_KERNEL_MIN_SPEEDUP`` (default 3.0; relaxed in CI),
``BENCH_KERNEL_HEADLINE_UES`` (default 100000),
``BENCH_KERNEL_SHARDS`` (default 9), ``BENCH_KERNEL_WORKERS``
(default 1 — serial is the memory-bounded path and beats a fork pool
on small core counts), ``BENCH_KERNEL_REPEATS`` (duel best-of, default
3), ``BENCH_KERNEL_MAX_MATCH_SECONDS`` (default 10; relaxed
in CI), ``BENCH_KERNEL_MAX_RSS_MB`` (default 1024),
``BENCH_KERNEL_MAX_DEVIATION`` (default 0.01).
"""

from __future__ import annotations

import json
import os
import resource
import sys
import time
from pathlib import Path

# Runnable straight from a checkout without an editable install.
_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.dmra import DMRAPolicy
from repro.core.soa import make_matching_engine
from repro.scale import run_sharded
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_pr6.json"

# Mid-size monolithic duel: big enough that the round loop dominates,
# small enough to keep the object engine's run in seconds.
DUEL_CONFIG = ScenarioConfig.paper(region_side_m=5000.0, bs_per_sp=40)
DUEL_SEED = 2

# The PR 5 headline scenario (15 km side, 50 x 50 BS grid).
SCALE_CONFIG = ScenarioConfig.paper(region_side_m=15000.0, bs_per_sp=500)
SCALE_SEED = 1


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, default))
    except ValueError:
        return default


def _peak_rss_mb() -> float:
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return max(self_kb, child_kb) / 1024.0


def _duel(ue_count: int, repeats: int, failures: list[str]) -> dict:
    scenario = build_scenario(DUEL_CONFIG, ue_count, DUEL_SEED)
    times = {}
    runs = {}
    for kernel in ("object", "soa"):
        engine = make_matching_engine(
            DMRAPolicy(pricing=scenario.pricing, rho=DUEL_CONFIG.rho),
            kernel=kernel,
        )
        # Best-of-N: the runs are deterministic, so the minimum is the
        # least-noise measurement (same convention as bench_smoke).
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            runs[kernel] = engine.run(scenario.network, scenario.radio_map)
            best = min(best, time.perf_counter() - start)
        times[kernel] = best
        print(
            f"duel  kernel={kernel:6s}  match={times[kernel]:6.2f}s  "
            f"grants={len(runs[kernel].grants)}  "
            f"rounds={runs[kernel].rounds}"
        )
    if runs["soa"].grants != runs["object"].grants:
        failures.append("duel: SoA grants differ from object engine")
    if runs["soa"].cloud_ue_ids != runs["object"].cloud_ue_ids:
        failures.append("duel: SoA cloud set differs from object engine")
    if runs["soa"].rounds != runs["object"].rounds:
        failures.append("duel: SoA round count differs from object engine")
    speedup = times["object"] / times["soa"] if times["soa"] > 0 else 0.0
    return {
        "ues": ue_count,
        "seed": DUEL_SEED,
        "bs_count": 200,
        "object_s": round(times["object"], 3),
        "soa_s": round(times["soa"], 3),
        "speedup": round(speedup, 2),
        "grants": len(runs["soa"].grants),
        "rounds": runs["soa"].rounds,
    }


def _scale_record(outcome) -> dict:
    return {
        "shards": outcome.shard_count,
        "wall_s": round(outcome.wall_time_s, 3),
        "match_s": round(outcome.match_time_s, 3),
        "reconcile_s": round(outcome.reconcile_time_s, 3),
        "total_profit": round(outcome.metrics.total_profit, 2),
        "edge_served": outcome.metrics.edge_served,
        "cloud_forwarded": outcome.metrics.cloud_forwarded,
        "evictions": outcome.total_evictions,
    }


def main() -> int:
    duel_ues = _env_int("BENCH_KERNEL_UES", 12_000)
    duel_repeats = _env_int("BENCH_KERNEL_REPEATS", 3)
    min_speedup = _env_float("BENCH_KERNEL_MIN_SPEEDUP", 3.0)
    headline_ues = _env_int("BENCH_KERNEL_HEADLINE_UES", 100_000)
    shards = _env_int("BENCH_KERNEL_SHARDS", 9)
    # Serial by default: one shard's arrays live at a time (the
    # memory-bounded path), and with a ~3 s total match the fork pool's
    # page-table copies cost more than they recover on small core
    # counts.  BENCH_KERNEL_WORKERS opts into the pool on big boxes.
    workers = _env_int("BENCH_KERNEL_WORKERS", 1)
    max_match_s = _env_float("BENCH_KERNEL_MAX_MATCH_SECONDS", 10.0)
    max_rss_mb = _env_float("BENCH_KERNEL_MAX_RSS_MB", 1024.0)
    max_deviation = _env_float("BENCH_KERNEL_MAX_DEVIATION", 0.01)

    failures: list[str] = []

    duel = _duel(duel_ues, duel_repeats, failures)
    if duel["speedup"] < min_speedup:
        failures.append(
            f"duel: speedup {duel['speedup']:.2f}x < "
            f"{min_speedup:.2f}x floor"
        )

    # --- single-shard (= monolithic) reference on the SoA kernel -----
    mono = run_sharded(
        SCALE_CONFIG,
        ue_count=headline_ues,
        seed=SCALE_SEED,
        shards=1,
        workers=1,
        kernel="soa",
    )
    mono_record = _scale_record(mono)
    print(
        f"mono      shards=1  match={mono_record['match_s']:.2f}s  "
        f"profit={mono_record['total_profit']:.2f}"
    )

    # --- headline: 100k UEs, 9 shards, SoA kernel --------------------
    headline = run_sharded(
        SCALE_CONFIG,
        ue_count=headline_ues,
        seed=SCALE_SEED,
        shards=shards,
        workers=workers,
        kernel="soa",
    )
    peak_rss = _peak_rss_mb()
    headline_record = _scale_record(headline)
    headline_record["ues"] = headline_ues
    headline_record["workers"] = workers
    headline_record["peak_rss_mb"] = round(peak_rss, 1)
    deviation = abs(
        headline.metrics.total_profit - mono.metrics.total_profit
    ) / mono.metrics.total_profit
    headline_record["deviation_vs_monolithic"] = round(deviation, 6)
    print(
        f"headline  shards={shards}  match={headline_record['match_s']:.2f}s  "
        f"wall={headline_record['wall_s']:.2f}s  "
        f"peak_rss={peak_rss:.0f}MB  deviation={deviation:.4f}"
    )

    accounted = len(headline.assignment.grants) + len(
        headline.assignment.cloud_ue_ids
    )
    if accounted != headline_ues:
        failures.append(
            f"headline: {accounted} UEs accounted != {headline_ues}"
        )
    if headline.match_time_s > max_match_s:
        failures.append(
            f"headline: match {headline.match_time_s:.1f}s > "
            f"{max_match_s:.0f}s cap"
        )
    if peak_rss > max_rss_mb:
        failures.append(
            f"headline: peak RSS {peak_rss:.0f}MB > {max_rss_mb:.0f}MB cap"
        )
    if deviation > max_deviation:
        failures.append(
            f"headline: profit deviation {deviation:.4f} > {max_deviation}"
        )

    report = {
        "bench": "kernel",
        "caps": {
            "min_speedup": min_speedup,
            "max_match_seconds": max_match_s,
            "max_rss_mb": max_rss_mb,
            "max_deviation": max_deviation,
        },
        "duel": duel,
        "monolithic": mono_record,
        "headline": headline_record,
        "failures": failures,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("kernel bench OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
