"""Benches for BS failure injection: recovery quality and degradation.

Measures the repair machinery's cost and asserts graceful degradation:
a single failure is absorbed, damage grows monotonically with outage
size, and surviving UEs are never disturbed.
"""

from repro.dynamics.failures import inject_bs_failures
from repro.sim.config import ScenarioConfig


def test_failure_recovery_throughput(benchmark):
    """Wall-clock for the full allocate -> kill 3 BSs -> repair cycle."""
    config = ScenarioConfig.paper()
    outcome = benchmark.pedantic(
        lambda: inject_bs_failures(
            config, ue_count=600, failed_bs_ids=[0, 5, 10], seed=1
        ),
        rounds=1,
        iterations=1,
    )
    assert outcome.orphaned_ues > 0


def test_failure_graceful_degradation(benchmark):
    """Profit loss grows with the number of failed BSs, and a single
    failure under moderate load costs under 2% of total profit."""
    config = ScenarioConfig.paper()

    def sweep():
        return [
            inject_bs_failures(
                config,
                ue_count=700,
                failed_bs_ids=list(range(count)),
                seed=2,
            )
            for count in (1, 4, 8)
        ]

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    losses = [o.profit_loss for o in outcomes]
    assert losses == sorted(losses)
    assert outcomes[0].profit_loss_fraction < 0.02
