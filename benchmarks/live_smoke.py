"""CI smoke driver for the live observability plane.

Boots ``dmra serve --listen 127.0.0.1:0`` on a small churn tape as a
real subprocess, then drives it the way an operator (or Prometheus)
would:

1. wait for the port file, poll ``/healthz`` until live and
   ``/readyz`` until the first flush completed;
2. scrape ``/metrics`` and assert the expected families are present
   and well-formed (histogram invariants included);
3. wait for the replay to quiesce, take a final scrape, and — after
   the subprocess exits cleanly — assert the scrape's histogram
   families equal the final flushed metrics document exactly;
4. leave the scrape, flush document, and flight-recorder dump on disk
   as workflow artifacts.

Run from the repo root: ``python benchmarks/live_smoke.py``.  Exits
nonzero on any failure.
"""

from __future__ import annotations

import subprocess
import sys
import time
from pathlib import Path

from repro.obs import (
    http_get,
    parse_exposition,
    read_metrics,
    validate_histogram_family,
)

PORT_FILE = Path("live_port.txt")
FLUSH_FILE = Path("live_flush.json")
FLIGHT_FILE = Path("live_flight.json")
SCRAPE_FILE = Path("live_scrape.prom")

SERVE_ARGS = [
    sys.executable, "-m", "repro", "serve",
    "--rate", "4", "--horizon", "180", "--holding", "30",
    "--move-fraction", "0.1", "--seed", "1",
    "--listen", "127.0.0.1:0",
    "--port-file", str(PORT_FILE),
    "--flush", str(FLUSH_FILE),
    "--flush-interval", "0.2",
    "--linger", "20",
    "--flight-dump", str(FLIGHT_FILE),
]

REQUIRED_HISTOGRAMS = (
    "dmra_stream_event_latency_s",
    "dmra_stream_queue_depth_hist",
)
REQUIRED_FAMILIES = REQUIRED_HISTOGRAMS + ("dmra_flight_entries",)


def wait_for(predicate, timeout_s: float, what: str):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            result = predicate()
        except Exception:
            result = None
        if result:
            return result
        time.sleep(0.1)
    raise SystemExit(f"live-smoke: timed out waiting for {what}")


def check(condition: bool, what: str) -> None:
    if not condition:
        raise SystemExit(f"live-smoke: FAILED: {what}")
    print(f"live-smoke: ok: {what}")


def scrape(base: str) -> str:
    status, body = http_get(base + "/metrics")
    check(status == 200, "/metrics returns 200")
    return body


def main() -> int:
    for stale in (PORT_FILE, FLUSH_FILE, FLIGHT_FILE, SCRAPE_FILE):
        stale.unlink(missing_ok=True)
    proc = subprocess.Popen(SERVE_ARGS)
    try:
        wait_for(
            lambda: PORT_FILE.exists() and PORT_FILE.read_text().strip(),
            30, "port file",
        )
        port = int(PORT_FILE.read_text().strip())
        base = f"http://127.0.0.1:{port}"
        print(f"live-smoke: endpoint at {base}")

        wait_for(
            lambda: http_get(base + "/healthz")[0] == 200, 30, "/healthz"
        )
        check(True, "/healthz is live")
        wait_for(
            lambda: http_get(base + "/readyz")[0] == 200, 30,
            "/readyz (first flush)",
        )
        check(True, "/readyz flipped after first flush")

        early = parse_exposition(scrape(base))
        for name in REQUIRED_FAMILIES:
            check(early.has_family(name), f"family {name} present")
        for name in REQUIRED_HISTOGRAMS:
            family = early.family(name)
            check(family.kind == "histogram", f"{name} is a histogram")
            validate_histogram_family(family)
            check(True, f"{name} satisfies histogram invariants")

        # Poll until the replay quiesces: consecutive identical
        # scrapes that also match the flushed document on disk.
        def stable():
            first = scrape(base)
            time.sleep(0.3)
            return first if scrape(base) == first else None

        final_text = wait_for(stable, 60, "quiesced scrape")
        SCRAPE_FILE.write_text(final_text)
        final = parse_exposition(final_text)

        check(proc.wait(timeout=60) == 0, "serve subprocess exited 0")

        flushed = read_metrics(FLUSH_FILE)
        for name in REQUIRED_FAMILIES:
            # The JSON document canonicalizes sample order (sorted by
            # label set) while exposition keeps bucket order; compare
            # the sample *sets*, which must match exactly.
            check(
                {(s.labels, s.value) for s in final.family(name).samples}
                == {
                    (s.labels, s.value)
                    for s in flushed.family(name).samples
                },
                f"final scrape of {name} equals flushed totals",
            )

        import json

        flight = json.loads(FLIGHT_FILE.read_text())
        check(flight["schema"] == "dmra.flight/1", "flight dump schema")
        check(
            flight["entries"][-1]["kind"] == "finish",
            "flight ring ends with the finish note",
        )
        events = final.family("dmra_stream_event_latency_s")
        total_latency_count = sum(
            s.value for s in events.samples
            if s.labels_dict.get("stat") == "count"
        )
        check(
            total_latency_count == flight["entries"][-1]["events"],
            "latency histogram count equals events processed",
        )
        print("live-smoke: PASS")
        return 0
    finally:
        if proc.poll() is None:
            proc.terminate()
            proc.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
