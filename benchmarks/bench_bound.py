"""Optimality-gap certification benchmark (``make bench-bound``).

Three measurements, all seeded:

* **headline** — certify the gap of a 100k-UE / 2500-BS sharded DMRA
  run (the ``bench_scale`` scenario) with the Lagrangian upper bound.
  The exact ILP refuses this instance by design (the variable guard
  trips at ~850k candidate links); the whole point of
  :mod:`repro.bound` is that certification keeps working there.  The
  bound phase (problem compile + subgradient iterations) must finish
  inside a wall-clock and RSS envelope, and the certified gap must
  stay under a ceiling.
* **tightness** — at 600 UEs both bound methods run; the Lagrangian
  must land within a relative tolerance of the LP value (per-UE
  integrality means the dual optimum *is* the LP optimum, so a loose
  Lagrangian is a solver bug, not a model property).
* **refusal** — the exact ILP must still refuse the headline instance
  with its guard message.  If it ever stops refusing, the guard
  changed and this bench should be revisited.

Emits ``BENCH_pr10.json`` at the repo root and exits non-zero when:

* the headline bound phase exceeds ``BENCH_BOUND_MAX_SECONDS``
  (default 60) or peak RSS exceeds ``BENCH_BOUND_MAX_RSS_MB``
  (default 2048);
* the certified headline gap exceeds ``BENCH_BOUND_MAX_GAP``
  (default 0.10; measured ~0.031);
* the 600-UE Lagrangian deviates from the LP value by more than
  ``BENCH_BOUND_MAX_LP_DEVIATION`` (default 0.001);
* the ILP does not refuse the headline instance.

Knobs: ``BENCH_BOUND_UES`` (headline population, default 100000),
``BENCH_BOUND_ITERATIONS`` (subgradient budget, default 150),
``BENCH_BOUND_SHARDS`` / ``BENCH_BOUND_WORKERS`` (incumbent run,
defaults 9 / 4).
"""

from __future__ import annotations

import json
import os
import resource
import sys
import time
from pathlib import Path

# Runnable straight from a checkout without an editable install.
_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.baselines.optimal import OptimalILPAllocator
from repro.bound import (
    certify_gap,
    compile_bound_problem,
    lagrangian_bound,
    lp_bound,
)
from repro.core.dmra import DMRAAllocator
from repro.errors import ConfigurationError
from repro.scale import run_sharded
from repro.sim.config import ScenarioConfig
from repro.sim.runner import run_allocation
from repro.sim.scenario import build_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_pr10.json"

# The bench_scale deployment: 15 km side, 300 m BS grid pitch, 2500 BSs.
CONFIG = ScenarioConfig.paper(region_side_m=15000.0, bs_per_sp=500)
SEED = 1


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, default))
    except ValueError:
        return default


def _peak_rss_mb() -> float:
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return max(self_kb, child_kb) / 1024.0


def main() -> int:
    headline_ues = _env_int("BENCH_BOUND_UES", 100_000)
    iterations = _env_int("BENCH_BOUND_ITERATIONS", 150)
    shards = _env_int("BENCH_BOUND_SHARDS", 9)
    workers = _env_int("BENCH_BOUND_WORKERS", 4)
    max_seconds = _env_float("BENCH_BOUND_MAX_SECONDS", 60.0)
    max_rss_mb = _env_float("BENCH_BOUND_MAX_RSS_MB", 2048.0)
    max_gap = _env_float("BENCH_BOUND_MAX_GAP", 0.10)
    max_lp_dev = _env_float("BENCH_BOUND_MAX_LP_DEVIATION", 0.001)

    failures: list[str] = []

    # --- tightness: Lagrangian vs LP at paper scale ------------------
    paper = build_scenario(ScenarioConfig.paper(), 600, 3)
    incumbent = run_allocation(
        paper, DMRAAllocator(pricing=paper.pricing)
    ).metrics.total_profit
    lp = lp_bound(paper.network, paper.radio_map, paper.pricing)
    lag = lagrangian_bound(
        compile_bound_problem(paper.network, paper.radio_map, paper.pricing),
        max_iterations=400,
        target=incumbent,
    ).upper_bound
    lp_deviation = abs(lag - lp) / max(abs(lp), 1.0)
    tightness = {
        "ues": 600,
        "seed": 3,
        "incumbent_profit": round(incumbent, 2),
        "lp_bound": round(lp, 2),
        "lagrangian_bound": round(lag, 2),
        "deviation": round(lp_deviation, 6),
    }
    print(
        f"tightness  lp={lp:.1f}  lagrangian={lag:.1f}  "
        f"deviation={lp_deviation:.2e}"
    )
    if lag < lp - 1e-6 * max(1.0, abs(lp)):
        failures.append(
            f"tightness: lagrangian {lag:.2f} below LP {lp:.2f} "
            f"(weak duality violated — solver bug)"
        )
    if lp_deviation > max_lp_dev:
        failures.append(
            f"tightness: |lagrangian - lp|/lp {lp_deviation:.2e} > "
            f"{max_lp_dev}"
        )

    # --- headline: certify a 100k-UE sharded run ---------------------
    incumbent_outcome = run_sharded(
        CONFIG,
        ue_count=headline_ues,
        seed=SEED,
        shards=shards,
        workers=workers,
        kernel="soa",
    )
    headline_profit = incumbent_outcome.metrics.total_profit
    print(
        f"incumbent  ues={headline_ues}  "
        f"wall={incumbent_outcome.wall_time_s:.1f}s  "
        f"profit={headline_profit:.0f}"
    )

    scenario = build_scenario(CONFIG, headline_ues, SEED)
    bound_start = time.perf_counter()
    certificate = certify_gap(
        scenario.network,
        scenario.radio_map,
        scenario.pricing,
        incumbent_profit=headline_profit,
        method="lagrangian",
        max_iterations=iterations,
    )
    bound_wall = time.perf_counter() - bound_start
    peak_rss = _peak_rss_mb()
    problem = compile_bound_problem(
        scenario.network, scenario.radio_map, scenario.pricing
    )
    headline = {
        "ues": headline_ues,
        "bs_count": 2500,
        "candidate_pairs": problem.n_pairs,
        "problem_mb": round(problem.estimated_bytes() / 1e6, 1),
        "incumbent_profit": round(headline_profit, 2),
        "upper_bound": round(certificate.upper_bound, 2),
        "gap_fraction": round(certificate.gap_fraction, 6),
        "iterations": certificate.iterations,
        "bound_wall_s": round(bound_wall, 3),
        "peak_rss_mb": round(peak_rss, 1),
    }
    print(
        f"headline  pairs={problem.n_pairs}  "
        f"bound_wall={bound_wall:.2f}s  "
        f"gap={certificate.gap_fraction * 100:.2f}%  "
        f"peak_rss={peak_rss:.0f}MB"
    )
    if bound_wall > max_seconds:
        failures.append(
            f"headline: bound wall {bound_wall:.1f}s > {max_seconds:.0f}s"
        )
    if peak_rss > max_rss_mb:
        failures.append(
            f"headline: peak RSS {peak_rss:.0f}MB > {max_rss_mb:.0f}MB"
        )
    if certificate.gap_fraction > max_gap:
        failures.append(
            f"headline: certified gap {certificate.gap_fraction:.4f} > "
            f"{max_gap}"
        )

    # --- refusal: the exact ILP must not handle this instance --------
    ilp_refused = False
    guard_message = ""
    try:
        OptimalILPAllocator(pricing=scenario.pricing).allocate(
            scenario.network, scenario.radio_map
        )
    except ConfigurationError as error:
        ilp_refused = True
        guard_message = str(error)
    if not ilp_refused:
        failures.append(
            "refusal: OptimalILPAllocator accepted the headline instance"
        )
    print(f"refusal   ilp_refused={ilp_refused}")

    report = {
        "bench": "bound",
        "seed": SEED,
        "scenario": {
            "region_side_m": 15000.0,
            "bs_per_sp": 500,
            "bs_count": 2500,
        },
        "caps": {
            "max_seconds": max_seconds,
            "max_rss_mb": max_rss_mb,
            "max_gap": max_gap,
            "max_lp_deviation": max_lp_dev,
        },
        "tightness": tightness,
        "headline": headline,
        "ilp_guard_message": guard_message,
        "failures": failures,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
