"""Bench for Fig. 3: total SP profit vs #UEs (iota=2, random placement).

Same claims as Fig. 2 under the random BS layout, where uneven coverage
makes NonCo's one-shot association overflow harder.
"""

from conftest import run_figure_bench


def test_fig3_profit_vs_ue_count_random(benchmark, bench_scale, results_dir):
    result = run_figure_bench(benchmark, "fig3", bench_scale, results_dir)

    dmra, dcsp, nonco = result["dmra"], result["dcsp"], result["nonco"]
    for x in dmra.xs:
        assert dmra.value_at(x).mean >= dcsp.value_at(x).mean
        assert dmra.value_at(x).mean >= nonco.value_at(x).mean
    for series in (dmra, dcsp, nonco):
        assert list(series.means) == sorted(series.means)
