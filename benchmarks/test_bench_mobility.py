"""Benches for the mobility extension: handover/profit trade-off.

Measures epoch-loop throughput (network + radio-map rebuild dominate)
and asserts the sticky-vs-reoptimize trade-off holds: re-optimization
never loses profit and never saves handovers.
"""

from repro.dynamics import RandomWaypoint, run_mobility
from repro.sim.config import ScenarioConfig


def test_mobility_epoch_throughput(benchmark):
    config = ScenarioConfig.paper()
    outcome = benchmark.pedantic(
        lambda: run_mobility(
            config,
            ue_count=400,
            epochs=6,
            epoch_duration_s=30.0,
            seed=3,
            mobility=RandomWaypoint(),
        ),
        rounds=1,
        iterations=1,
    )
    assert outcome.epoch_count == 7


def test_mobility_sticky_tradeoff(benchmark):
    config = ScenarioConfig.paper()

    def run_pair():
        kwargs = dict(
            config=config,
            ue_count=400,
            epochs=8,
            epoch_duration_s=30.0,
            seed=5,
            mobility=RandomWaypoint(speed_min_mps=1.0, speed_max_mps=5.0),
        )
        return (
            run_mobility(sticky=True, **kwargs),
            run_mobility(sticky=False, **kwargs),
        )

    sticky, fresh = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert fresh.mean_profit >= sticky.mean_profit
    assert fresh.total_handovers >= sticky.total_handovers
