"""Shared fixtures: hand-built micro networks and seeded paper scenarios."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.entities import BaseStation, Service, ServiceProvider, UserEquipment
from repro.model.geometry import Point, Rectangle
from repro.model.network import MECNetwork
from repro.radio.channel import build_radio_map
from repro.radio.sinr import LinkBudget
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import Scenario, build_scenario


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def make_tiny_network(
    ue_specs: list[dict] | None = None,
    bs_specs: list[dict] | None = None,
    coverage_radius_m: float = 600.0,
) -> MECNetwork:
    """A 2-SP / 2-BS / 2-service network with precise, overridable numbers.

    Defaults: BS 0 (SP 0) at (0, 0) and BS 1 (SP 1) at (400, 0), both
    hosting both services with 20 CRUs each and 10 RRBs; UEs default to
    SP 0, service 0, 4 CRUs, 2 Mbps at (100, 0).
    """
    providers = [
        ServiceProvider(sp_id=0, name="SP-0", cru_price=10.0, other_cost=0.5),
        ServiceProvider(sp_id=1, name="SP-1", cru_price=10.0, other_cost=0.5),
    ]
    services = [Service(0, "svc-0"), Service(1, "svc-1")]
    default_bs = [
        dict(bs_id=0, sp_id=0, position=Point(0.0, 0.0)),
        dict(bs_id=1, sp_id=1, position=Point(400.0, 0.0)),
    ]
    base_stations = []
    for spec in bs_specs if bs_specs is not None else default_bs:
        merged = dict(
            cru_capacity={0: 20, 1: 20},
            rrb_capacity=10,
            uplink_bandwidth_hz=10e6,
        )
        merged.update(spec)
        base_stations.append(BaseStation(**merged))
    default_ues = [dict(ue_id=0)]
    user_equipments = []
    for spec in ue_specs if ue_specs is not None else default_ues:
        merged = dict(
            sp_id=0,
            position=Point(100.0, 0.0),
            service_id=0,
            cru_demand=4,
            rate_demand_bps=2e6,
            tx_power_dbm=10.0,
        )
        merged.update(spec)
        user_equipments.append(UserEquipment(**merged))
    return MECNetwork(
        providers=providers,
        base_stations=base_stations,
        user_equipments=user_equipments,
        services=services,
        region=Rectangle.square(1200.0),
        coverage_radius_m=coverage_radius_m,
    )


@pytest.fixture
def tiny_network() -> MECNetwork:
    return make_tiny_network()


@pytest.fixture
def tiny_radio_map(tiny_network):
    return build_radio_map(tiny_network, LinkBudget())


@pytest.fixture(scope="session")
def paper_config() -> ScenarioConfig:
    return ScenarioConfig.paper()


@pytest.fixture(scope="session")
def small_scenario(paper_config) -> Scenario:
    """A paper-topology scenario small enough for fast per-test runs."""
    return build_scenario(paper_config, ue_count=120, seed=7)


@pytest.fixture(scope="session")
def loaded_scenario(paper_config) -> Scenario:
    """A scenario loaded past the radio saturation point."""
    return build_scenario(paper_config, ue_count=1100, seed=11)
