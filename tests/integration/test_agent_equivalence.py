"""Integration: the message-passing DMRA equals the direct engine.

This is the decentralization proof of the reproduction: an agent system
where BSs see only mailbox contents and UEs see only broadcasts produces
*bit-identical* associations to the shared-state matching loop, on paper
scenarios across placements, loads, and rho values.
"""

import pytest

from repro.core.agents import DecentralizedDMRAAllocator
from repro.core.dmra import DMRAAllocator
from repro.dist import TRANSPORTS, DistributedDMRAAllocator
from repro.sim.config import ScenarioConfig
from repro.sim.runner import run_allocation
from repro.sim.scenario import build_scenario


def assert_equivalent(scenario, rho=10.0):
    direct = DMRAAllocator(pricing=scenario.pricing, rho=rho).allocate(
        scenario.network, scenario.radio_map
    )
    agents = DecentralizedDMRAAllocator(
        pricing=scenario.pricing, rho=rho
    ).allocate(scenario.network, scenario.radio_map)
    agents.validate(scenario.network, scenario.radio_map)
    assert sorted(direct.association_pairs()) == sorted(
        agents.association_pairs()
    )
    assert direct.cloud_ue_ids == agents.cloud_ue_ids
    assert direct.rounds == agents.rounds
    return agents


class TestEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_underloaded(self, seed):
        scenario = build_scenario(ScenarioConfig.paper(), 150, seed)
        assert_equivalent(scenario)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_overloaded(self, seed):
        scenario = build_scenario(ScenarioConfig.paper(), 1200, seed)
        assert_equivalent(scenario)

    @pytest.mark.parametrize("placement", ["random", "clustered"])
    def test_other_placements(self, placement):
        scenario = build_scenario(
            ScenarioConfig.paper(placement=placement), 400, 7
        )
        assert_equivalent(scenario)

    @pytest.mark.parametrize("rho", [0.0, 50.0, 500.0])
    def test_rho_values(self, rho):
        scenario = build_scenario(ScenarioConfig.paper(), 600, 5)
        assert_equivalent(scenario, rho=rho)

    @pytest.mark.parametrize("iota", [1.0, 1.1, 2.0])
    def test_iota_values(self, iota):
        scenario = build_scenario(
            ScenarioConfig.paper(cross_sp_markup=iota), 500, 2
        )
        assert_equivalent(scenario)

    def test_partial_hosting(self):
        scenario = build_scenario(
            ScenarioConfig.paper(hosted_fraction=0.5), 300, 9
        )
        assert_equivalent(scenario)


class TestMessageOverhead:
    def test_relay_counts_are_conserved(self):
        """Every edge-served UE got >= 1 request and exactly 1 grant
        relayed by its SP; every cloud UE produced one forward."""
        scenario = build_scenario(ScenarioConfig.paper(), 1200, 3)
        allocator = DecentralizedDMRAAllocator(pricing=scenario.pricing)
        assignment = allocator.allocate(
            scenario.network, scenario.radio_map
        )
        total_grants = sum(
            sp.grants_relayed for sp in allocator.last_sp_agents.values()
        )
        total_forwards = sum(
            sp.cloud_forwards for sp in allocator.last_sp_agents.values()
        )
        total_requests = sum(
            sp.requests_relayed for sp in allocator.last_sp_agents.values()
        )
        assert total_grants == assignment.edge_served_count
        assert total_forwards == assignment.cloud_count
        assert total_requests >= assignment.edge_served_count

    def test_outcome_metrics_match_direct(self):
        scenario = build_scenario(ScenarioConfig.paper(), 800, 4)
        direct = run_allocation(
            scenario, DMRAAllocator(pricing=scenario.pricing)
        ).metrics
        agents = run_allocation(
            scenario, DecentralizedDMRAAllocator(pricing=scenario.pricing)
        ).metrics
        assert direct.total_profit == pytest.approx(agents.total_profit)
        assert direct.edge_served == agents.edge_served
        assert direct.forwarded_traffic_bps == pytest.approx(
            agents.forwarded_traffic_bps
        )


class TestDistributedEquivalence:
    """The multi-process deployment (repro.dist) under a reliable
    transport is bit-identical to the direct engine — same association
    pairs, same cloud set, same convergence-round count — for every
    transport, including the forked mp and tcp paths."""

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_bit_identical_across_transports(self, transport):
        scenario = build_scenario(ScenarioConfig.paper(), 80, 7)
        direct = DMRAAllocator(pricing=scenario.pricing).allocate(
            scenario.network, scenario.radio_map
        )
        allocator = DistributedDMRAAllocator(
            transport=transport, pricing=scenario.pricing
        )
        dist = allocator.allocate(scenario.network, scenario.radio_map)
        dist.validate(scenario.network, scenario.radio_map)
        assert sorted(direct.association_pairs()) == sorted(
            dist.association_pairs()
        )
        assert direct.cloud_ue_ids == dist.cloud_ue_ids
        assert direct.rounds == dist.rounds
        report = allocator.last_report
        assert report["orphans"] == 0
        assert all(n == 0 for n in report["faults"].values())
        # Message accounting is populated for every wire kind in play.
        assert report["messages"]["bcast"] > 0
        assert report["messages"]["req"] > 0
        assert report["messages"]["grant"] > 0
        assert report["bytes"]["req"] > report["messages"]["req"]

    def test_matches_in_process_agents_overloaded(self):
        """Overload (cloud fallbacks in play) through the inproc
        deployment still mirrors the single-process agent allocator."""
        scenario = build_scenario(ScenarioConfig.paper(), 400, 3)
        agents = DecentralizedDMRAAllocator(
            pricing=scenario.pricing
        ).allocate(scenario.network, scenario.radio_map)
        dist = DistributedDMRAAllocator(
            transport="inproc", pricing=scenario.pricing
        ).allocate(scenario.network, scenario.radio_map)
        assert sorted(agents.association_pairs()) == sorted(
            dist.association_pairs()
        )
        assert agents.cloud_ue_ids == dist.cloud_ue_ids
        assert agents.rounds == dist.rounds

    def test_ue_host_partitioning_is_invisible(self):
        """Sharding UEs across a different host count must not change
        the outcome — hosts are deployment detail, not algorithm."""
        scenario = build_scenario(ScenarioConfig.paper(), 80, 7)
        results = [
            DistributedDMRAAllocator(
                transport="inproc", pricing=scenario.pricing, ue_hosts=hosts
            ).allocate(scenario.network, scenario.radio_map)
            for hosts in (1, 4)
        ]
        assert sorted(results[0].association_pairs()) == sorted(
            results[1].association_pairs()
        )
        assert results[0].cloud_ue_ids == results[1].cloud_ue_ids
        assert results[0].rounds == results[1].rounds
