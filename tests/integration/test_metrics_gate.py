"""Acceptance tests for the metrics/manifest/diff regression gate.

The bar from the issue: two runs at the same (config, seed) must diff
to zero regressions; a deliberate ``rho`` perturbation must surface
per-SP profit and convergence-round deltas; and the metrics JSON
document must round-trip byte-exactly.
"""

from repro.core.dmra import DMRAAllocator
from repro.obs import (
    DiffTolerances,
    Recorder,
    build_manifest,
    diff_documents,
    metrics_from_outcome,
    metrics_from_trace,
    metrics_json,
    parse_metrics,
    telemetry_session,
    trace_from_recorder,
)
from repro.sim.config import ScenarioConfig
from repro.sim.runner import run_allocation
from repro.sim.scenario import build_scenario

UES = 300  # enough contention that the rho weight changes the matching
SEED = 3


def run_with_metrics(rho: float):
    """One traced allocator run -> merged metrics document."""
    config = ScenarioConfig.paper(rho=rho)
    manifest = build_manifest(
        config=config, seeds=[SEED], command="run",
        clock=lambda: 0.0, host=lambda: {"platform": "test"},
    )
    recorder = Recorder(meta={"command": "run", "manifest": manifest})
    with telemetry_session(recorder):
        scenario = build_scenario(config, UES, seed=SEED)
        outcome = run_allocation(
            scenario, DMRAAllocator(pricing=scenario.pricing, rho=rho)
        )
    trace_doc = metrics_from_trace(trace_from_recorder(recorder))
    outcome_doc = metrics_from_outcome(
        scenario.network, outcome.assignment, scenario.pricing,
        manifest=manifest,
    )
    # Same merge the CLI does: outcome families win name collisions.
    outcome_names = set(outcome_doc.family_names())
    merged = outcome_doc.families + tuple(
        fam for fam in trace_doc.families if fam.name not in outcome_names
    )
    from repro.obs import MetricsDocument

    return MetricsDocument(
        families=tuple(sorted(merged, key=lambda f: f.name)),
        manifest=manifest,
    )


class TestRegressionGate:
    def test_same_config_and_seed_diffs_clean(self):
        a = run_with_metrics(rho=10.0)
        b = run_with_metrics(rho=10.0)
        report = diff_documents(a, b)
        assert report.comparable
        assert report.ok, [d.describe() for d in report.regressions]
        assert report.families_compared >= 15

    def test_rho_perturbation_surfaces_domain_deltas(self):
        baseline = run_with_metrics(rho=10.0)
        perturbed = run_with_metrics(rho=0.0)
        report = diff_documents(
            baseline, perturbed, require_comparable=False
        )
        assert not report.comparable
        assert any("rho" in note for note in report.manifest_notes)
        assert report.ok  # exploratory mode: deltas, not regressions
        changed = {d.family for d in report.changes}
        # rho weights the cross-SP term of Eq. 17: per-SP profit moves...
        assert "dmra_sp_profit" in changed
        # ...and the bidding dynamics shift, visible per round.
        assert any(
            name.startswith("dmra_match_round_") for name in changed
        )

    def test_injected_profit_regression_gates(self):
        baseline = run_with_metrics(rho=10.0)
        candidate = parse_metrics(metrics_json(baseline))
        # Halve every SP's profit in the candidate document.
        from repro.obs import MetricFamily, MetricSample, MetricsDocument

        families = []
        for fam in candidate.families:
            if fam.name in ("dmra_total_profit", "dmra_sp_profit"):
                fam = MetricFamily(
                    name=fam.name, kind=fam.kind, help=fam.help,
                    samples=tuple(
                        MetricSample(labels=s.labels, value=s.value * 0.5)
                        for s in fam.samples
                    ),
                    unit=fam.unit,
                )
            families.append(fam)
        candidate = MetricsDocument(
            families=tuple(families), manifest=candidate.manifest
        )
        report = diff_documents(
            baseline, candidate, DiffTolerances(abs_tol=1e-6, rel_tol=0.01)
        )
        assert not report.ok
        regressed = {d.family for d in report.regressions}
        assert "dmra_total_profit" in regressed
        assert "dmra_sp_profit" in regressed

    def test_metrics_json_round_trips_byte_exact(self):
        doc = run_with_metrics(rho=10.0)
        text = metrics_json(doc)
        assert metrics_json(parse_metrics(text)) == text
