"""Integration: every shipped example must run and tell its story.

Examples are documentation that executes; a refactor that silently
breaks one defeats their purpose.  Each test runs the script in a
subprocess (as a user would) and checks for the output that carries the
example's point.  ``capacity_planning`` sweeps to 2000 UEs and is the
one script exercised import-only to keep the suite's wall-clock sane.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent.parent / "examples"

#: script stem -> a string its output must contain.
EXPECTED_OUTPUT = {
    "quickstart": "DMRA per-SP profit:",
    "decentralized_trace": "identical to the direct matching engine: True",
    "resilience_drill": "concentrated vs spread",
    "service_placement": "planned",
    "mobility_handover": "handover rate",
    "operator_asymmetry": "near-monopoly",
    "online_arrivals": "Erlang-style blocking curve",
    "diurnal_day": "trace replay:",
    "dense_urban_competition": "Per-SP profit at 1000 UEs",
}


@pytest.mark.parametrize("stem", sorted(EXPECTED_OUTPUT))
def test_example_runs(stem):
    script = EXAMPLES_DIR / f"{stem}.py"
    assert script.exists(), f"example {script} is missing"
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECTED_OUTPUT[stem] in result.stdout


def test_capacity_planning_importable():
    """The long-running example at least parses and exposes main()."""
    script = EXAMPLES_DIR / "capacity_planning.py"
    spec = importlib.util.spec_from_file_location(
        "capacity_planning", script
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(module.main)


def test_every_example_is_covered():
    """New example scripts must be added to this test's table."""
    stems = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    covered = set(EXPECTED_OUTPUT) | {"capacity_planning"}
    assert stems == covered, (
        f"examples missing from the integration table: {stems - covered}"
    )
