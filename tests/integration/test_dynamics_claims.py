"""Integration tests for the dynamic extensions' headline claims."""

import pytest

from repro.baselines.dcsp import DCSPPolicy
from repro.dynamics.arrivals import ExponentialHolding, PoissonArrivals
from repro.dynamics.mobility import RandomWaypoint, run_mobility
from repro.dynamics.online import OnlineConfig, run_online
from repro.sim.config import ScenarioConfig

CONFIG = ScenarioConfig.paper()


class TestOnlineClaims:
    def test_erlang_blocking_curve_monotone(self):
        """Blocking grows with offered load across several seeds."""
        def mean_blocking(rate):
            total = 0.0
            for seed in range(3):
                online = OnlineConfig(
                    horizon_s=250.0,
                    arrivals=PoissonArrivals(rate_per_s=rate),
                    holding=ExponentialHolding(mean_s=180.0),
                )
                total += run_online(
                    CONFIG, online, seed=seed
                ).blocking_probability
            return total / 3

        curve = [mean_blocking(rate) for rate in (3.0, 7.0, 12.0)]
        assert curve == sorted(curve)
        assert curve[-1] > 0.05

    def test_dmra_policy_beats_dcsp_policy_online(self):
        """The online profit rate under the DMRA policy dominates the
        DCSP policy on the same arrival sample paths."""
        online = OnlineConfig(
            horizon_s=300.0,
            arrivals=PoissonArrivals(rate_per_s=6.0),
            holding=ExponentialHolding(mean_s=180.0),
        )
        dmra_total = 0.0
        dcsp_total = 0.0
        for seed in range(3):
            dmra_total += run_online(
                CONFIG, online, seed=seed
            ).total_admitted_profit
            dcsp_total += run_online(
                CONFIG, online, seed=seed, policy=DCSPPolicy()
            ).total_admitted_profit
        assert dmra_total > dcsp_total

    def test_profit_rate_saturates_with_load(self):
        """Doubling an already saturating arrival rate must not double
        profit throughput: the edge is the bottleneck."""
        def profit_rate(rate):
            online = OnlineConfig(
                horizon_s=300.0,
                arrivals=PoissonArrivals(rate_per_s=rate),
                holding=ExponentialHolding(mean_s=250.0),
            )
            return run_online(CONFIG, online, seed=1).profit_rate_per_s

        saturating = profit_rate(8.0)
        doubled = profit_rate(16.0)
        assert doubled < 2.0 * saturating * 0.8


class TestMobilityClaims:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_reoptimization_dominates_sticky(self, seed):
        kwargs = dict(
            config=CONFIG,
            ue_count=300,
            epochs=8,
            epoch_duration_s=30.0,
            seed=seed,
            mobility=RandomWaypoint(speed_min_mps=1.0, speed_max_mps=4.0),
        )
        sticky = run_mobility(sticky=True, **kwargs)
        fresh = run_mobility(sticky=False, **kwargs)
        assert fresh.mean_profit >= sticky.mean_profit
        assert fresh.total_handovers >= sticky.total_handovers

    def test_handover_rate_grows_with_speed(self):
        from repro.dynamics.mobility import RandomWalk

        def rate(speed):
            return run_mobility(
                CONFIG,
                ue_count=300,
                epochs=8,
                epoch_duration_s=30.0,
                seed=3,
                mobility=RandomWalk(speed_mps=speed),
            ).handover_rate

        assert rate(40.0) > rate(2.0)

    def test_sticky_never_drops_static_population(self):
        from repro.dynamics.mobility import RandomWalk

        outcome = run_mobility(
            CONFIG,
            ue_count=300,
            epochs=5,
            epoch_duration_s=30.0,
            seed=4,
            mobility=RandomWalk(speed_mps=0.0),
        )
        assert outcome.total_handovers == 0
        assert all(r.drops_to_cloud == 0 for r in outcome.records)
