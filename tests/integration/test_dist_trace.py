"""Integration: cross-process distributed tracing and the live plane.

The observability half of the distribution claim: a multi-process
``dmra agents`` run yields **one** causally-linked trace — every node
span is grafted under the supervisor phase span that triggered it via
the ``(trace_id, parent_span_ref)`` carried on wire frames — and a
live ``/metrics`` scrape taken after the run quiesces equals the
post-run trace-derived totals exactly.
"""

import json

import pytest

from repro.dist import DistributedDMRAAllocator, scenario_plan
from repro.obs import (
    LiveServer,
    Recorder,
    http_get,
    metrics_from_trace,
    parse_exposition,
    parse_trace,
    telemetry_session,
    trace_from_recorder,
    trace_lines,
)
from repro.sim.config import ScenarioConfig
from repro.sim.runner import run_allocation
from repro.sim.scenario import build_scenario

UE_COUNT = 40
SEED = 7


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(ScenarioConfig.paper(), UE_COUNT, SEED)


def traced_run(scenario, transport, **kwargs):
    recorder = Recorder(meta={"command": "agents"})
    with telemetry_session(recorder):
        allocator = DistributedDMRAAllocator(
            transport=transport, pricing=scenario.pricing, **kwargs
        )
        outcome = run_allocation(scenario, allocator)
    return trace_from_recorder(recorder), outcome


@pytest.fixture(scope="module")
def mp_trace(scenario):
    return traced_run(scenario, "mp")[0]


class TestMergedTrace:
    def test_single_rooted_tree_no_orphans(self, mp_trace):
        assert [span.name for span in mp_trace.spans] == ["dist.allocate"]
        orphan_node_roots = [
            span for span in mp_trace.spans
            if span.name.startswith("node.")
        ]
        assert not orphan_node_roots

    def test_cross_process_parent_links_resolve(self, mp_trace):
        # Every node span hangs under the supervisor phase span whose
        # span_ref matches the parent_ref the wire frame carried.
        node_spans = [
            span for span in mp_trace.all_spans()
            if span.name.startswith("node.")
        ]
        assert node_spans
        for phase_span in (
            s for s in mp_trace.all_spans() if s.name == "dist.phase"
        ):
            ref = phase_span.attrs["span_ref"]
            for child in phase_span.children:
                if child.name.startswith("node."):
                    assert child.attrs["parent_ref"] == ref

    def test_all_node_spans_share_one_trace_id(self, mp_trace):
        root = mp_trace.spans[0]
        trace_ids = {
            span.attrs["trace_id"]
            for span in mp_trace.all_spans()
            if span.name.startswith("node.")
        }
        assert trace_ids == {root.attrs["trace_id"]}

    def test_every_phase_span_has_node_children(self, mp_trace):
        phases = [
            s for s in mp_trace.all_spans() if s.name == "dist.phase"
        ]
        assert phases
        for phase_span in phases:
            assert any(
                c.name.startswith("node.") for c in phase_span.children
            )

    def test_node_histograms_merged_into_supervisor(self, mp_trace):
        for phase in ("bcast", "propose", "decide"):
            assert f"dist.node_msgs.{phase}" in mp_trace.histograms
            assert f"dist.phase_wall_s.{phase}" in mp_trace.histograms
        assert mp_trace.histograms["dist.round_wall_s"].count > 0

    def test_trace_round_trips_byte_exact(self, mp_trace):
        lines = trace_lines(mp_trace)
        assert trace_lines(parse_trace(lines)) == lines

    def test_inproc_and_mp_produce_same_shape(self, scenario, mp_trace):
        inproc_trace = traced_run(scenario, "inproc")[0]

        def shape(trace):
            return sorted(
                (span.name, len(span.children))
                for span in trace.all_spans()
            )

        assert shape(inproc_trace) == shape(mp_trace)


class TestLiveScrapeEqualsTotals:
    def test_final_scrape_matches_trace_derived_metrics(self, scenario):
        recorder = Recorder(meta={"command": "agents"})
        live = LiveServer(recorder).start()
        try:
            with telemetry_session(recorder):
                allocator = DistributedDMRAAllocator(
                    transport="mp", pricing=scenario.pricing
                )
                run_allocation(scenario, allocator)
            scraped = parse_exposition(
                http_get(live.url + "/metrics")[1]
            )
        finally:
            live.stop()
        reference = metrics_from_trace(trace_from_recorder(recorder))
        for name in (
            "dmra_dist_phase_wall_s",
            "dmra_dist_round_wall_s",
            "dmra_dist_node_msgs",
        ):
            live_fam = scraped.family(name)
            ref_fam = reference.family(name)
            assert live_fam.kind == ref_fam.kind == "histogram"
            assert live_fam.samples == ref_fam.samples


class TestCrashPostmortems:
    def test_crash_dumps_flight_ring(self, scenario, tmp_path):
        flight_dir = tmp_path / "flight"
        allocator = DistributedDMRAAllocator(
            transport="inproc",
            pricing=scenario.pricing,
            fault_plan=scenario_plan("crash", seed=3),
            flight_dir=flight_dir,
        )
        run_allocation(scenario, allocator)
        postmortems = allocator.last_report["postmortems"]
        assert "bs:0" in postmortems
        dump_file = flight_dir / "flight_bs_0.json"
        dumps = json.loads(dump_file.read_text())
        assert dumps and dumps[0]["schema"] == "dmra.flight/1"
        kinds = [entry["kind"] for entry in dumps[0]["entries"]]
        # The ring must show the ticks leading up to the crash, with
        # the crash itself as the final entry.
        assert kinds[-1] == "crash"
        assert "tick" in kinds

    def test_no_faults_no_postmortems(self, scenario):
        allocator = DistributedDMRAAllocator(
            transport="inproc", pricing=scenario.pricing
        )
        run_allocation(scenario, allocator)
        assert allocator.last_report["postmortems"] == {}


class TestAgentsCliLivePlane:
    def test_listen_flight_dir_and_port_file(self, tmp_path, capsys):
        from repro.cli import main

        flight_dir = tmp_path / "flight"
        port_file = tmp_path / "port"
        assert main([
            "agents", "--ues", str(UE_COUNT), "--seed", str(SEED),
            "--transport", "inproc", "--faults", "crash",
            "--flight-dir", str(flight_dir),
            "--listen", "127.0.0.1:0", "--port-file", str(port_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "live endpoint:" in out
        assert "flight postmortems: bs:0" in out
        assert int(port_file.read_text().strip()) > 0
        assert (flight_dir / "flight_bs_0.json").exists()
