"""Integration tests for the stale-broadcast (gossip-delay) ablation.

A real deployment's resource broadcasts arrive late.  These tests pin
the reproduction's robustness result: DMRA under stale information
still terminates, still satisfies every constraint, and loses almost
nothing in allocation quality — the cost of staleness is extra rounds.
"""

import pytest

from repro.core.agents import DecentralizedDMRAAllocator
from repro.core.dmra import DMRAAllocator
from repro.econ.accounting import compute_profit
from repro.errors import ConfigurationError
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario


def profit(scenario, assignment):
    return compute_profit(
        scenario.network, assignment.grants, scenario.pricing
    ).total_profit


class TestStaleBroadcasts:
    @pytest.fixture(scope="class")
    def scenario(self):
        return build_scenario(ScenarioConfig.paper(), 1100, 3)

    def test_zero_delay_is_bit_identical_to_direct(self, scenario):
        direct = DMRAAllocator(pricing=scenario.pricing).allocate(
            scenario.network, scenario.radio_map
        )
        fresh = DecentralizedDMRAAllocator(
            pricing=scenario.pricing, broadcast_delay_rounds=0
        ).allocate(scenario.network, scenario.radio_map)
        assert sorted(direct.association_pairs()) == sorted(
            fresh.association_pairs()
        )

    @pytest.mark.parametrize("delay", [1, 2, 5])
    def test_stale_runs_valid_and_terminate(self, scenario, delay):
        assignment = DecentralizedDMRAAllocator(
            pricing=scenario.pricing, broadcast_delay_rounds=delay
        ).allocate(scenario.network, scenario.radio_map)
        assignment.validate(scenario.network, scenario.radio_map)
        assert assignment.edge_served_count > 0

    def test_staleness_costs_rounds_not_quality(self, scenario):
        fresh = DecentralizedDMRAAllocator(
            pricing=scenario.pricing, broadcast_delay_rounds=0
        ).allocate(scenario.network, scenario.radio_map)
        stale = DecentralizedDMRAAllocator(
            pricing=scenario.pricing, broadcast_delay_rounds=3
        ).allocate(scenario.network, scenario.radio_map)
        # Convergence slows...
        assert stale.rounds > fresh.rounds
        # ...but quality stays within 2% either way.
        assert profit(scenario, stale) >= 0.98 * profit(scenario, fresh)

    def test_rounds_grow_with_delay(self, scenario):
        rounds = []
        for delay in (0, 2, 5):
            assignment = DecentralizedDMRAAllocator(
                pricing=scenario.pricing, broadcast_delay_rounds=delay
            ).allocate(scenario.network, scenario.radio_map)
            rounds.append(assignment.rounds)
        assert rounds == sorted(rounds)
        assert rounds[-1] > rounds[0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            DecentralizedDMRAAllocator(broadcast_delay_rounds=-1)

    def test_bs_backstop_filter_under_staleness(self):
        """Under heavy load and long delay, UEs over-propose on stale
        info; the BS-side filter must keep every grant within actual
        capacity (validate() would catch any violation)."""
        scenario = build_scenario(ScenarioConfig.paper(), 1400, 1)
        assignment = DecentralizedDMRAAllocator(
            pricing=scenario.pricing, broadcast_delay_rounds=4
        ).allocate(scenario.network, scenario.radio_map)
        assignment.validate(scenario.network, scenario.radio_map)
