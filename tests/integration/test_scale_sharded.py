"""Integration tests for the sharded scale runner.

Acceptance criteria from the scale and kernel issues are pinned here:

* ``shards=1`` is **bit-identical** to the monolithic
  ``DMRAAllocator`` path — same grants tuple, same cloud set, same
  round count;
* with several shards on a scenario with real cross-tile contention,
  total SP profit stays within 1% of the monolithic run;
* ``kernel="soa"`` produces the same sharded outcome as the object
  kernel, shard for shard;
* the :class:`~repro.scale.reconcile.ReconcileOutcome` on the
  committed contention scenario matches a recorded digest — the
  cursor-based admission rewrite must be behaviour-preserving.
"""

import hashlib

import pytest

from repro.core.dmra import DMRAAllocator
from repro.errors import ConfigurationError
from repro.scale import run_sharded
from repro.scale.executor import ShardJob, run_shards
from repro.scale.partition import halo_bs_indices, plan_tiles
from repro.scale.reconcile import reconcile_claims
from repro.scale.runner import _bucket_ues
from repro.scale.streaming import DEFAULT_CHUNK_SIZE, build_scenario_frame
from repro.sim.config import ScenarioConfig
from repro.sim.runner import run_allocation
from repro.sim.scenario import build_scenario

# The committed multi-shard contention scenario: a 2.7 km side with
# 50 BSs keeps shard halos overlapping at tile borders (coverage is
# 500 m) without degenerating into every-BS-in-every-halo, so the
# reconciliation path is genuinely exercised (dozens of evictions).
CONTENTION_CONFIG = ScenarioConfig.paper(region_side_m=2700.0, bs_per_sp=10)
CONTENTION_UES = 2000
CONTENTION_SEED = 1


def _monolithic(config, ue_count, seed):
    scenario = build_scenario(config, ue_count=ue_count, seed=seed)
    allocator = DMRAAllocator(pricing=scenario.pricing, rho=config.rho)
    return run_allocation(scenario, allocator)


class TestSingleShardParity:
    def test_bit_identical_to_monolithic(self):
        config = ScenarioConfig.paper()
        mono = _monolithic(config, ue_count=400, seed=7)
        sharded = run_sharded(
            config, ue_count=400, seed=7, shards=1, workers=1
        )
        assert sharded.assignment.grants == mono.assignment.grants
        assert (
            sharded.assignment.cloud_ue_ids == mono.assignment.cloud_ue_ids
        )
        assert sharded.assignment.rounds == mono.assignment.rounds
        assert sharded.metrics.total_profit == mono.metrics.total_profit
        assert sharded.total_evictions == 0
        assert sharded.reproposal_grants == 0

    def test_single_shard_parity_on_contention_config(self):
        mono = _monolithic(CONTENTION_CONFIG, ue_count=600, seed=3)
        sharded = run_sharded(
            CONTENTION_CONFIG, ue_count=600, seed=3, shards=1, workers=1
        )
        assert sharded.assignment.grants == mono.assignment.grants
        assert (
            sharded.assignment.cloud_ue_ids == mono.assignment.cloud_ue_ids
        )


class TestMultiShardDeviation:
    @pytest.fixture(scope="class")
    def monolithic(self):
        return _monolithic(
            CONTENTION_CONFIG,
            ue_count=CONTENTION_UES,
            seed=CONTENTION_SEED,
        )

    @pytest.mark.parametrize("shards", [4, 9])
    def test_total_profit_within_one_percent(self, monolithic, shards):
        sharded = run_sharded(
            CONTENTION_CONFIG,
            ue_count=CONTENTION_UES,
            seed=CONTENTION_SEED,
            shards=shards,
            workers=1,
        )
        mono_profit = monolithic.metrics.total_profit
        deviation = abs(sharded.metrics.total_profit - mono_profit)
        assert deviation / mono_profit < 0.01
        # Contention is real on this scenario: tiles overlap and the
        # reconciliation pass has actual work to do.
        assert sharded.total_evictions > 0
        assert len(sharded.shard_ue_counts) == shards
        assert sum(sharded.shard_ue_counts) == CONTENTION_UES
        # Every UE is accounted for in the assembled assignment.
        assignment = sharded.assignment
        assert (
            len(assignment.grants) + len(assignment.cloud_ue_ids)
            == CONTENTION_UES
        )

    def test_worker_count_does_not_change_the_result(self):
        serial = run_sharded(
            CONTENTION_CONFIG,
            ue_count=CONTENTION_UES,
            seed=CONTENTION_SEED,
            shards=4,
            workers=1,
        )
        forked = run_sharded(
            CONTENTION_CONFIG,
            ue_count=CONTENTION_UES,
            seed=CONTENTION_SEED,
            shards=4,
            workers=4,
        )
        assert forked.assignment.grants == serial.assignment.grants
        assert (
            forked.assignment.cloud_ue_ids
            == serial.assignment.cloud_ue_ids
        )
        assert forked.shard_rounds == serial.shard_rounds
        assert forked.evictions_by_shard == serial.evictions_by_shard


class TestKernelParity:
    """The per-shard SoA kernel must not change the sharded outcome."""

    @pytest.mark.parametrize(
        "shards,ue_count,seed", [(1, 400, 7), (4, 600, 3)]
    )
    def test_soa_kernel_matches_object_kernel(self, shards, ue_count, seed):
        config = (
            ScenarioConfig.paper() if shards == 1 else CONTENTION_CONFIG
        )
        obj = run_sharded(
            config, ue_count=ue_count, seed=seed, shards=shards,
            workers=1, kernel="object",
        )
        soa = run_sharded(
            config, ue_count=ue_count, seed=seed, shards=shards,
            workers=1, kernel="soa",
        )
        assert soa.assignment.grants == obj.assignment.grants
        assert soa.assignment.cloud_ue_ids == obj.assignment.cloud_ue_ids
        assert soa.assignment.rounds == obj.assignment.rounds
        assert soa.shard_rounds == obj.shard_rounds
        assert soa.evictions_by_shard == obj.evictions_by_shard
        assert soa.metrics.total_profit == obj.metrics.total_profit


def _contention_shard_results(kernel: str):
    """Shard results on the committed contention scenario, built through
    the same partition path :func:`run_sharded` uses."""
    config = CONTENTION_CONFIG
    frame = build_scenario_frame(config, CONTENTION_UES, CONTENTION_SEED)
    allocator = DMRAAllocator(pricing=frame.pricing, rho=config.rho)
    shards = 4
    shard_ues = _bucket_ues(frame, shards, DEFAULT_CHUNK_SIZE)
    _, _, bounds = plan_tiles(frame.region, shards)
    shard_bs = tuple(
        tuple(
            frame.base_stations[i]
            for i in halo_bs_indices(
                frame.base_stations, tile_bounds, config.coverage_radius_m
            ).tolist()
        )
        for tile_bounds in bounds
    )
    job = ShardJob(
        providers=frame.providers,
        services=frame.services,
        region=frame.region,
        coverage_radius_m=config.coverage_radius_m,
        geometry="auto",
        link_budget=config.link_budget(),
        rate_model=config.rate_model_fn(),
        pricing=allocator.pricing,
        rho=allocator.rho,
        same_sp_priority=allocator.same_sp_priority,
        max_rounds=allocator.max_rounds,
        shard_ues=shard_ues,
        shard_base_stations=shard_bs,
        kernel=kernel,
    )
    return frame, run_shards(job, workers=1)


def _reconcile_digest(outcome) -> str:
    payload = (
        tuple(
            tuple(
                (g.bs_id, g.ue_id, g.service_id, g.crus, g.rrbs)
                for g in shard
            )
            for shard in outcome.surviving
        ),
        outcome.evicted_ue_ids,
        outcome.evictions_by_shard,
    )
    return hashlib.sha256(repr(payload).encode()).hexdigest()


# Recorded from the pre-rewrite quadratic admission loop on the
# committed contention scenario (4 shards, 2000 UEs, seed 1): the
# cursor-based reconcile must keep survivors, evicted UE ids, and
# per-shard eviction counts identical.
RECONCILE_DIGEST = (
    "436f3e8ad30f704156faa579ae2004408cc9e5360cb4de80e895548c5ff4e701"
)
RECONCILE_EVICTIONS = 60


@pytest.mark.parametrize("kernel", ["object", "soa"])
def test_reconcile_outcome_digest_is_stable(kernel):
    frame, results = _contention_shard_results(kernel)
    outcome = reconcile_claims(frame.base_stations, results)
    assert outcome.total_evictions == RECONCILE_EVICTIONS
    assert _reconcile_digest(outcome) == RECONCILE_DIGEST


class TestRunShardedValidation:
    def test_invalid_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sharded(
                ScenarioConfig.paper(), ue_count=10, seed=0, shards=0
            )

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sharded(
                ScenarioConfig.paper(),
                ue_count=10,
                seed=0,
                shards=2,
                workers=0,
            )
