"""Integration tests for the sharded scale runner.

Two acceptance criteria from the scale subsystem issue are pinned
here:

* ``shards=1`` is **bit-identical** to the monolithic
  ``DMRAAllocator`` path — same grants tuple, same cloud set, same
  round count;
* with several shards on a scenario with real cross-tile contention,
  total SP profit stays within 1% of the monolithic run.
"""

import pytest

from repro.core.dmra import DMRAAllocator
from repro.errors import ConfigurationError
from repro.scale import run_sharded
from repro.sim.config import ScenarioConfig
from repro.sim.runner import run_allocation
from repro.sim.scenario import build_scenario

# The committed multi-shard contention scenario: a 2.7 km side with
# 50 BSs keeps shard halos overlapping at tile borders (coverage is
# 500 m) without degenerating into every-BS-in-every-halo, so the
# reconciliation path is genuinely exercised (dozens of evictions).
CONTENTION_CONFIG = ScenarioConfig.paper(region_side_m=2700.0, bs_per_sp=10)
CONTENTION_UES = 2000
CONTENTION_SEED = 1


def _monolithic(config, ue_count, seed):
    scenario = build_scenario(config, ue_count=ue_count, seed=seed)
    allocator = DMRAAllocator(pricing=scenario.pricing, rho=config.rho)
    return run_allocation(scenario, allocator)


class TestSingleShardParity:
    def test_bit_identical_to_monolithic(self):
        config = ScenarioConfig.paper()
        mono = _monolithic(config, ue_count=400, seed=7)
        sharded = run_sharded(
            config, ue_count=400, seed=7, shards=1, workers=1
        )
        assert sharded.assignment.grants == mono.assignment.grants
        assert (
            sharded.assignment.cloud_ue_ids == mono.assignment.cloud_ue_ids
        )
        assert sharded.assignment.rounds == mono.assignment.rounds
        assert sharded.metrics.total_profit == mono.metrics.total_profit
        assert sharded.total_evictions == 0
        assert sharded.reproposal_grants == 0

    def test_single_shard_parity_on_contention_config(self):
        mono = _monolithic(CONTENTION_CONFIG, ue_count=600, seed=3)
        sharded = run_sharded(
            CONTENTION_CONFIG, ue_count=600, seed=3, shards=1, workers=1
        )
        assert sharded.assignment.grants == mono.assignment.grants
        assert (
            sharded.assignment.cloud_ue_ids == mono.assignment.cloud_ue_ids
        )


class TestMultiShardDeviation:
    @pytest.fixture(scope="class")
    def monolithic(self):
        return _monolithic(
            CONTENTION_CONFIG,
            ue_count=CONTENTION_UES,
            seed=CONTENTION_SEED,
        )

    @pytest.mark.parametrize("shards", [4, 9])
    def test_total_profit_within_one_percent(self, monolithic, shards):
        sharded = run_sharded(
            CONTENTION_CONFIG,
            ue_count=CONTENTION_UES,
            seed=CONTENTION_SEED,
            shards=shards,
            workers=1,
        )
        mono_profit = monolithic.metrics.total_profit
        deviation = abs(sharded.metrics.total_profit - mono_profit)
        assert deviation / mono_profit < 0.01
        # Contention is real on this scenario: tiles overlap and the
        # reconciliation pass has actual work to do.
        assert sharded.total_evictions > 0
        assert len(sharded.shard_ue_counts) == shards
        assert sum(sharded.shard_ue_counts) == CONTENTION_UES
        # Every UE is accounted for in the assembled assignment.
        assignment = sharded.assignment
        assert (
            len(assignment.grants) + len(assignment.cloud_ue_ids)
            == CONTENTION_UES
        )

    def test_worker_count_does_not_change_the_result(self):
        serial = run_sharded(
            CONTENTION_CONFIG,
            ue_count=CONTENTION_UES,
            seed=CONTENTION_SEED,
            shards=4,
            workers=1,
        )
        forked = run_sharded(
            CONTENTION_CONFIG,
            ue_count=CONTENTION_UES,
            seed=CONTENTION_SEED,
            shards=4,
            workers=4,
        )
        assert forked.assignment.grants == serial.assignment.grants
        assert (
            forked.assignment.cloud_ue_ids
            == serial.assignment.cloud_ue_ids
        )
        assert forked.shard_rounds == serial.shard_rounds
        assert forked.evictions_by_shard == serial.evictions_by_shard


class TestRunShardedValidation:
    def test_invalid_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sharded(
                ScenarioConfig.paper(), ue_count=10, seed=0, shards=0
            )

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sharded(
                ScenarioConfig.paper(),
                ue_count=10,
                seed=0,
                shards=2,
                workers=0,
            )
