"""Integration: fault injection in the multi-process deployment.

The resilience half of the distribution claim: under each named fault
scenario (message drops, delays, stale broadcasts, a BS crash with
recovery) the deployment still **terminates**, produces a **valid**
assignment, loses a **bounded** amount of profit relative to the
fault-free run, and emits complete message/round accounting — both in
``last_report`` and as labeled families in the derived trace metrics
document.
"""

import pytest

from repro.dist import DistributedDMRAAllocator, FaultPlan, scenario_plan
from repro.obs import (
    Recorder,
    metrics_from_trace,
    telemetry_session,
    trace_from_recorder,
)
from repro.sim.config import ScenarioConfig
from repro.sim.runner import run_allocation
from repro.sim.scenario import build_scenario

UE_COUNT = 40
SEED = 7
FAULT_SEED = 3


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(ScenarioConfig.paper(), UE_COUNT, SEED)


@pytest.fixture(scope="module")
def reliable_outcome(scenario):
    allocator = DistributedDMRAAllocator(
        transport="inproc", pricing=scenario.pricing
    )
    return run_allocation(scenario, allocator)


def run_faulty(scenario, name, **kwargs):
    allocator = DistributedDMRAAllocator(
        transport="inproc",
        pricing=scenario.pricing,
        fault_plan=scenario_plan(name, seed=FAULT_SEED),
        max_rounds=80,
        **kwargs,
    )
    outcome = run_allocation(scenario, allocator)
    return allocator, outcome


class TestFaultScenarios:
    @pytest.mark.parametrize("name", ["drop", "delay", "stale", "crash"])
    def test_terminates_validly_with_bounded_degradation(
        self, scenario, reliable_outcome, name
    ):
        allocator, outcome = run_faulty(scenario, name)
        # Terminated well before the max_rounds backstop, with a valid
        # (run_allocation re-checks constraints) assignment.
        report = allocator.last_report
        assert report["total_rounds"] < 80
        assert report["orphans"] == 0
        # Bounded profit degradation vs the fault-free deployment.
        assert outcome.metrics.total_profit >= (
            0.9 * reliable_outcome.metrics.total_profit
        )
        # Accounting is complete: every kind counted, bytes > messages.
        for kind in ("bcast", "req", "grant"):
            assert report["messages"][kind] > 0
            assert report["bytes"][kind] > report["messages"][kind]

    def test_drop_scenario_actually_drops_and_retries(self, scenario):
        allocator, _ = run_faulty(scenario, "drop")
        report = allocator.last_report
        assert report["faults"]["dropped"] > 0
        # The SP relay layer re-transmits requests whose grants were
        # lost; at 25% drop some retransmission is certain.
        retransmits = sum(
            sp["retransmits"] for sp in report["sp"].values()
        )
        assert retransmits > 0

    def test_delay_scenario_releases_every_held_frame(self, scenario):
        allocator, _ = run_faulty(scenario, "delay")
        faults = allocator.last_report["faults"]
        assert faults["delayed"] > 0
        assert faults["released"] == faults["delayed"]
        assert faults["dropped"] == 0

    def test_stale_scenario_delays_broadcasts_only(self, scenario):
        allocator, _ = run_faulty(scenario, "stale")
        report = allocator.last_report
        assert report["faults"]["delayed"] > 0
        # Requests and grants ride untouched, so no retransmissions.
        assert sum(sp["retransmits"] for sp in report["sp"].values()) == 0

    def test_crash_scenario_recovers_via_epoch_bump(self, scenario):
        allocator, outcome = run_faulty(scenario, "crash")
        report = allocator.last_report
        assert report["faults"]["crashes"] == 1
        # Recovery is complete: no UE is stranded on the wiped ledger.
        assert report["orphans"] == 0
        plan = allocator.fault_plan
        assert report["total_rounds"] >= plan.last_crash_clear_round

    def test_fault_metrics_reach_the_trace_document(self, scenario):
        """The accounting is not just in-memory: a traced faulty run
        derives labeled dist_* metric families."""
        recorder = Recorder(meta={"kind": "dist-fault-test"})
        with telemetry_session(recorder):
            allocator, _ = run_faulty(scenario, "drop")
        document = metrics_from_trace(trace_from_recorder(recorder))
        for family in (
            "dmra_dist_messages_total",
            "dmra_dist_bytes_total",
            "dmra_dist_sp_requests_total",
            "dmra_dist_sp_grants_total",
            "dmra_dist_faults_total",
            "dmra_dist_rounds",
            "dmra_dist_total_rounds",
        ):
            assert document.has_family(family), family
        messages = document.family("dmra_dist_messages_total")
        report = allocator.last_report
        for kind, n in report["messages"].items():
            assert messages.sample(kind=kind) == n
        faults = document.family("dmra_dist_faults_total")
        assert faults.sample(event="dropped") == report["faults"]["dropped"]

    def test_mp_transport_replays_the_same_faulty_run(self, scenario):
        """Fault determinism is transport-independent: the same plan on
        forked processes produces the identical assignment and fault
        tallies as on threads."""
        inproc, inproc_outcome = run_faulty(scenario, "drop")
        mp_alloc = DistributedDMRAAllocator(
            transport="mp",
            pricing=scenario.pricing,
            fault_plan=scenario_plan("drop", seed=FAULT_SEED),
            max_rounds=80,
        )
        mp_outcome = run_allocation(scenario, mp_alloc)
        assert sorted(inproc_outcome.assignment.association_pairs()) == sorted(
            mp_outcome.assignment.association_pairs()
        )
        assert inproc.last_report["faults"] == mp_alloc.last_report["faults"]
        assert inproc.last_report["messages"] == mp_alloc.last_report["messages"]

    def test_crash_of_a_loaded_bs_reassigns_or_clouds_everyone(self, scenario):
        """Crashing a specific, loaded BS: every UE it served ends up
        either re-granted somewhere or at the cloud — never stranded."""
        reliable = DistributedDMRAAllocator(
            transport="inproc", pricing=scenario.pricing
        )
        baseline = reliable.allocate(scenario.network, scenario.radio_map)
        loaded_bs = max(
            (g.bs_id for g in baseline.grants),
            key=[g.bs_id for g in baseline.grants].count,
        )
        allocator = DistributedDMRAAllocator(
            transport="inproc",
            pricing=scenario.pricing,
            fault_plan=scenario_plan(
                "crash", seed=FAULT_SEED, crash_bs_id=loaded_bs
            ),
            max_rounds=80,
        )
        outcome = run_allocation(scenario, allocator)
        served = {g.ue_id for g in outcome.assignment.grants}
        assert served | set(outcome.assignment.cloud_ue_ids) == set(
            ue.ue_id for ue in scenario.network.user_equipments
        )
        assert allocator.last_report["orphans"] == 0


class TestFaultPlanEdgeCases:
    def test_zero_probability_plan_equals_reliable_run(
        self, scenario, reliable_outcome
    ):
        """A fault plan that injects nothing must still converge to the
        reliable result, despite always_broadcast switching on."""
        allocator = DistributedDMRAAllocator(
            transport="inproc",
            pricing=scenario.pricing,
            fault_plan=FaultPlan(seed=0),
            max_rounds=80,
        )
        outcome = run_allocation(scenario, allocator)
        assert sorted(outcome.assignment.association_pairs()) == sorted(
            reliable_outcome.assignment.association_pairs()
        )
        assert (
            outcome.assignment.cloud_ue_ids
            == reliable_outcome.assignment.cloud_ue_ids
        )

    def test_heavy_drop_still_terminates(self, scenario):
        """Far past the named scenarios: 60% drop inside the horizon.
        Termination is guaranteed because faults stop at the horizon."""
        allocator = DistributedDMRAAllocator(
            transport="inproc",
            pricing=scenario.pricing,
            fault_plan=FaultPlan(seed=1, drop_prob=0.6, horizon_rounds=8),
            max_rounds=120,
        )
        outcome = run_allocation(scenario, allocator)
        assert allocator.last_report["total_rounds"] < 120
        assert allocator.last_report["orphans"] == 0
        served = {g.ue_id for g in outcome.assignment.grants}
        assert served | set(outcome.assignment.cloud_ue_ids) == set(
            ue.ue_id for ue in scenario.network.user_equipments
        )


class TestReleaseProtocol:
    """Explicit releases keep BS ledgers and UE associations consistent:
    no stranded bookings under loss, no wire traffic without loss."""

    def test_reliable_run_sends_no_release_frames(self, scenario):
        allocator = DistributedDMRAAllocator(
            transport="inproc", pricing=scenario.pricing
        )
        run_allocation(scenario, allocator)
        report = allocator.last_report
        assert report["messages"].get("release", 0) == 0
        assert report.get("releases", 0) == 0
        assert report["stranded"] == 0

    def test_heavy_drop_leaves_no_stranded_bookings(self, scenario):
        """Regression: before the release protocol, 60% drop stranded a
        booking (a grant lost in flight while its UE walked elsewhere)
        that survived to assembly.  Releases must free it."""
        allocator = DistributedDMRAAllocator(
            transport="inproc",
            pricing=scenario.pricing,
            fault_plan=FaultPlan(seed=1, drop_prob=0.6, horizon_rounds=8),
            max_rounds=120,
        )
        outcome = run_allocation(scenario, allocator)
        report = allocator.last_report
        assert report["stranded"] == 0
        assert report["orphans"] == 0
        # The protocol actually ran: release frames were on the wire.
        assert report["messages"].get("release", 0) > 0
        # Ledger/association agreement means the profit accounting is
        # backed by real reservations.
        assert outcome.metrics.total_profit > 0

    def test_named_scenarios_have_no_stranded_bookings(self, scenario):
        for name in ("drop", "delay", "stale", "crash"):
            allocator, _ = run_faulty(scenario, name)
            assert allocator.last_report["stranded"] == 0, name
