"""Exhaustive-enumeration cross-check of the ILP optimum.

HiGHS is trusted, but trusting it is not verifying it: on instances
small enough to enumerate every feasible association (each UE picks one
candidate BS or the cloud), the ILP's objective must equal the true
maximum exactly.  This independently validates both the MILP encoding
(constraint matrices, signs, bounds) and the profit arithmetic.
"""

import itertools

import pytest

from repro.baselines.optimal import OptimalILPAllocator
from repro.core.dmra import DMRAAllocator
from repro.econ.accounting import marginal_profit
from repro.sim.config import ScenarioConfig
from repro.sim.runner import run_allocation
from repro.sim.scenario import Scenario, build_scenario

CLOUD = -1


def brute_force_optimum(scenario: Scenario) -> float:
    """Maximum total profit over every feasible association."""
    network = scenario.network
    ues = list(network.user_equipments)
    choices = [
        [CLOUD] + list(network.candidate_base_stations(ue.ue_id))
        for ue in ues
    ]
    best = 0.0
    for combo in itertools.product(*choices):
        crus_used: dict[tuple[int, int], int] = {}
        rrbs_used: dict[int, int] = {}
        profit = 0.0
        feasible = True
        for ue, bs_id in zip(ues, combo):
            if bs_id == CLOUD:
                continue
            key = (bs_id, ue.service_id)
            crus_used[key] = crus_used.get(key, 0) + ue.cru_demand
            if crus_used[key] > network.base_station(bs_id).cru_capacity.get(
                ue.service_id, 0
            ):
                feasible = False
                break
            rrbs = scenario.radio_map.link(ue.ue_id, bs_id).rrbs_required
            rrbs_used[bs_id] = rrbs_used.get(bs_id, 0) + rrbs
            if rrbs_used[bs_id] > network.base_station(bs_id).rrb_capacity:
                feasible = False
                break
            profit += marginal_profit(
                network, ue.ue_id, bs_id, scenario.pricing
            )
        if feasible:
            best = max(best, profit)
    return best


def tiny_scenario(ue_count: int, seed: int) -> Scenario:
    """A 2-SP / 4-BS / 2-service world small enough to enumerate."""
    config = ScenarioConfig.paper(
        sp_count=2,
        bs_per_sp=2,
        service_count=2,
        region_side_m=600.0,
        inter_site_distance_m=200.0,
        coverage_radius_m=400.0,
        cru_capacity_min=8,
        cru_capacity_max=12,
        uplink_bandwidth_hz=0.4e6,  # 2 RRBs per BS: capacity binds hard
    )
    return build_scenario(config, ue_count, seed)


class TestBruteForceCrossCheck:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_ilp_matches_enumeration(self, seed):
        scenario = tiny_scenario(ue_count=6, seed=seed)
        truth = brute_force_optimum(scenario)
        ilp = run_allocation(
            scenario, OptimalILPAllocator(pricing=scenario.pricing)
        ).metrics.total_profit
        assert ilp == pytest.approx(truth, rel=1e-9, abs=1e-9)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_dmra_bounded_by_enumeration(self, seed):
        scenario = tiny_scenario(ue_count=6, seed=seed)
        truth = brute_force_optimum(scenario)
        dmra = run_allocation(
            scenario, DMRAAllocator(pricing=scenario.pricing)
        ).metrics.total_profit
        assert dmra <= truth + 1e-9

    def test_enumeration_finds_contention(self):
        """Sanity: the tiny world actually has binding capacity (the
        optimum leaves someone in the cloud for at least one seed),
        otherwise the cross-check would only exercise the trivial case."""
        saw_cloud = False
        for seed in range(5):
            scenario = tiny_scenario(ue_count=8, seed=seed)
            ilp = run_allocation(
                scenario, OptimalILPAllocator(pricing=scenario.pricing)
            )
            ilp_profit = ilp.metrics.total_profit
            assert ilp_profit == pytest.approx(
                brute_force_optimum(scenario), rel=1e-9, abs=1e-9
            )
            if ilp.assignment.cloud_count > 0:
                saw_cloud = True
        assert saw_cloud
