"""Golden parity: the optimized engine must replay the reference bit for bit.

The hot-path engine (cached preference statics, watermark-tracked
``f_u``, cursor-based candidate walks) promises *identical* results to
the straightforward reference implementation preserved in
:mod:`repro.core.matching_reference` — same grants in the same order,
same cloud set, same round count.  These tests pin that promise across
seeded scenarios for both matching-based schemes; NonCo (which bypasses
the engine entirely) is pinned against a recorded digest so drift in
shared plumbing cannot hide.
"""

import hashlib

import pytest

from repro.baselines.dcsp import DCSPPolicy
from repro.baselines.nonco import NonCoAllocator
from repro.core.dmra import DMRAPolicy
from repro.core.matching import IterativeMatchingEngine
from repro.core.matching_reference import ReferenceMatchingEngine
from repro.econ.pricing import PaperPricing
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario

SCENARIOS = [
    (120, 3, "regular"),
    (250, 5, "random"),
    (400, 11, "regular"),
]


def _build(ue_count, seed, placement):
    config = ScenarioConfig.paper(placement=placement)
    return build_scenario(config, ue_count, seed)


def _policies():
    return {
        "dmra": lambda sc: DMRAPolicy(pricing=sc.pricing),
        "dmra-rho0": lambda sc: DMRAPolicy(pricing=sc.pricing, rho=0.0),
        "dcsp": lambda sc: DCSPPolicy(),
    }


@pytest.mark.parametrize("ue_count,seed,placement", SCENARIOS)
@pytest.mark.parametrize("policy_name", sorted(_policies()))
def test_optimized_engine_matches_reference(
    ue_count, seed, placement, policy_name
):
    scenario = _build(ue_count, seed, placement)
    factory = _policies()[policy_name]
    reference = ReferenceMatchingEngine(factory(scenario)).run(
        scenario.network, scenario.radio_map
    )
    optimized = IterativeMatchingEngine(factory(scenario)).run(
        scenario.network, scenario.radio_map
    )
    assert optimized.grants == reference.grants  # includes order
    assert optimized.cloud_ue_ids == reference.cloud_ue_ids
    assert optimized.rounds == reference.rounds


def test_parity_survives_engine_reuse_across_runs():
    """A warm static cache (second run on the same network) must not
    change results — the online simulation depends on this."""
    scenario = _build(250, 5, "random")
    engine = IterativeMatchingEngine(DMRAPolicy(pricing=scenario.pricing))
    first = engine.run(scenario.network, scenario.radio_map)
    second = engine.run(scenario.network, scenario.radio_map)
    assert first.grants == second.grants
    assert first.cloud_ue_ids == second.cloud_ue_ids
    assert first.rounds == second.rounds


def _digest(assignment) -> str:
    payload = repr((
        tuple(
            (g.bs_id, g.ue_id, g.service_id, g.crus, g.rrbs)
            for g in assignment.grants
        ),
        tuple(sorted(assignment.cloud_ue_ids)),
    )).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


# Recorded from the seed implementation; NonCo shares scenario plumbing
# (radio map, ledgers, candidate sets) with the engine, so a digest
# change here flags an unintended behavioural change in that plumbing.
NONCO_DIGESTS = {
    (120, 3, "regular"): "5931acbcbd55e654",
    (250, 5, "random"): "915674623c71508a",
    (400, 11, "regular"): "11084bc33d491b25",
}


@pytest.mark.parametrize("ue_count,seed,placement", SCENARIOS)
def test_nonco_assignment_digest_is_stable(ue_count, seed, placement):
    scenario = _build(ue_count, seed, placement)
    assignment = NonCoAllocator().allocate(
        scenario.network, scenario.radio_map
    )
    assert _digest(assignment) == NONCO_DIGESTS[(ue_count, seed, placement)]
