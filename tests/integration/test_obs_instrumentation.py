"""Integration tests for the observability subsystem.

The acceptance bar for the telemetry work: a parallel sweep with the
JSONL sink enabled must produce ONE merged trace whose span tree
round-trips exactly (write -> parse -> re-emit equal), with a structure
that does not depend on the worker count.
"""

from repro.baselines.nonco import NonCoAllocator
from repro.core.dmra import DMRAAllocator
from repro.econ.pricing import PaperPricing
from repro.obs import (
    Recorder,
    parse_trace,
    read_trace,
    telemetry_session,
    trace_lines,
    write_trace,
)
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario
from repro.sim.sweep import SweepSpec, run_sweep

XS = (30.0, 60.0)
SEEDS = (0, 1)


def micro_spec() -> SweepSpec:
    pricing = PaperPricing()
    return SweepSpec(
        xs=XS,
        seeds=SEEDS,
        scenario_factory=lambda x, seed: build_scenario(
            ScenarioConfig.paper(), int(x), seed
        ),
        allocator_factories={
            "dmra": lambda _x: DMRAAllocator(pricing=pricing),
            "nonco": lambda _x: NonCoAllocator(),
        },
        metric=lambda m: m.total_profit,
    )


def traced_sweep(workers: int):
    recorder = Recorder(meta={"kind": "sweep-test", "workers": workers})
    with telemetry_session(recorder):
        result = run_sweep(micro_spec(), workers=workers)
    return result, recorder


def span_shape(span, depth=0):
    """Timing-free skeleton of a span tree: (depth, name, attrs).

    The ``workers`` attribute is excluded — it is the one attribute
    that legitimately differs between serial and parallel runs.
    """
    attrs = tuple(
        sorted((k, v) for k, v in span.attrs.items() if k != "workers")
    )
    yield depth, span.name, attrs
    for child in span.children:
        yield from span_shape(child, depth + 1)


class TestSweepTraceMerging:
    def test_parallel_sweep_produces_one_merged_trace(self):
        _result, recorder = traced_sweep(workers=2)
        (sweep,) = recorder.roots  # everything under a single root
        assert sweep.name == "sweep"
        assert sweep.attrs["cells"] == len(XS) * len(SEEDS)
        cells = [c for c in sweep.children if c.name == "sweep.cell"]
        # Cells absorbed in grid order regardless of completion order.
        assert [(c.attrs["x"], c.attrs["seed"]) for c in cells] == [
            (x, seed) for x in XS for seed in SEEDS
        ]
        for cell in cells:
            names = [s.name for s in cell.walk()]
            assert "radio.build" in names  # scenario build inside cell
            # The DMRA curve runs the matching engine; NonCo does not.
            assert names.count("match") == 1

    def test_merged_trace_round_trips_through_jsonl(self, tmp_path):
        _result, recorder = traced_sweep(workers=2)
        lines = trace_lines(recorder)
        # In-memory: write -> parse -> re-emit is the identity.
        assert trace_lines(parse_trace(lines)) == lines
        # Through the file: identical bytes again.
        path = write_trace(tmp_path / "sweep.jsonl", recorder)
        assert trace_lines(read_trace(path)) == lines

    def test_trace_structure_is_worker_count_invariant(self):
        _serial_result, serial = traced_sweep(workers=1)
        _parallel_result, parallel = traced_sweep(workers=2)
        serial_shape = [s for root in serial.roots for s in span_shape(root)]
        parallel_shape = [
            s for root in parallel.roots for s in span_shape(root)
        ]
        assert serial_shape == parallel_shape
        # Fork-pool metric folding loses nothing.
        assert serial.counters == parallel.counters

    def test_telemetry_does_not_perturb_results(self):
        untraced = run_sweep(micro_spec(), workers=1)
        traced, _recorder = traced_sweep(workers=1)
        for label in untraced.labels():
            assert untraced[label].means == traced[label].means
