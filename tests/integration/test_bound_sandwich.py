"""The certification sandwich, on MILP-solvable scenarios.

For every scenario small enough that HiGHS can solve the exact ILP, the
chain of bounds must hold::

    lagrangian dual >= LP relaxation >= ILP optimum >= feasible profit

Note the direction: the (truncated) Lagrangian dual of the per-BS
capacity constraints upper-bounds the LP value — weak duality makes it
valid at any iteration count, and because the per-UE subproblem left
after dualizing Eqs. 12/14 is integral, the dual *optimum* equals the
LP value exactly (no duality gap beyond the relaxation itself).  The
LP dominates the ILP optimum, which dominates every feasible
assignment any allocator produces.  See docs/bounds.md.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.auction import AuctionAllocator
from repro.baselines.best_response import BestResponseAllocator
from repro.baselines.optimal import OptimalILPAllocator
from repro.bound import certify_gap, compile_bound_problem, lagrangian_bound, lp_bound
from repro.core.dmra import DMRAAllocator
from repro.econ.accounting import compute_profit
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario

scenario_params = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=10_000),
        "ue_count": st.integers(min_value=1, max_value=40),
        "placement": st.sampled_from(["regular", "random"]),
        "rho": st.sampled_from([0.0, 1.0, 10.0, 50.0]),
    }
)

RELAXED = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_scenario(params):
    config = ScenarioConfig.paper(
        placement=params["placement"], rho=params["rho"]
    )
    return build_scenario(config, params["ue_count"], params["seed"])


def profit_of(scenario, allocator):
    assignment = allocator.allocate(scenario.network, scenario.radio_map)
    assignment.validate(scenario.network, scenario.radio_map)
    return compute_profit(
        scenario.network, assignment.grants, scenario.pricing
    ).total_profit


def tol(value: float) -> float:
    return 1e-6 * max(1.0, abs(value))


@RELAXED
@given(params=scenario_params)
def test_certification_sandwich(params):
    scenario = make_scenario(params)
    network, radio_map = scenario.network, scenario.radio_map
    pricing = scenario.pricing

    ilp_profit = profit_of(scenario, OptimalILPAllocator(pricing=pricing))
    lp = lp_bound(network, radio_map, pricing)
    problem = compile_bound_problem(network, radio_map, pricing)
    lag = lagrangian_bound(
        problem, max_iterations=300, target=ilp_profit
    ).upper_bound

    assert lag >= lp - tol(lp)
    assert lp >= ilp_profit - tol(ilp_profit)
    for allocator in (
        DMRAAllocator(pricing=pricing, rho=params["rho"]),
        BestResponseAllocator(pricing=pricing),
        BestResponseAllocator(pricing=pricing, load_weight=1.0),
        AuctionAllocator(pricing=pricing),
    ):
        feasible = profit_of(scenario, allocator)
        assert ilp_profit >= feasible - tol(feasible), allocator.name


@RELAXED
@given(params=scenario_params)
def test_certified_gap_is_a_true_ceiling(params):
    """The certified gap_fraction upper-bounds the true optimality gap
    of the DMRA incumbent (measured against the exact ILP)."""
    scenario = make_scenario(params)
    incumbent = profit_of(
        scenario, DMRAAllocator(pricing=scenario.pricing, rho=params["rho"])
    )
    ilp_profit = profit_of(
        scenario, OptimalILPAllocator(pricing=scenario.pricing)
    )
    certificate = certify_gap(
        scenario.network,
        scenario.radio_map,
        scenario.pricing,
        incumbent_profit=incumbent,
        method="lagrangian",
        max_iterations=300,
    )
    if certificate.upper_bound > 0:
        true_gap = max(
            0.0,
            (ilp_profit - incumbent) / certificate.upper_bound,
        )
        assert certificate.gap_fraction >= true_gap - 1e-9


def test_sandwich_on_contended_fixture(small_scenario):
    """Deterministic spot check on the shared 120-UE paper scenario."""
    network = small_scenario.network
    radio_map = small_scenario.radio_map
    pricing = small_scenario.pricing
    ilp_profit = profit_of(
        small_scenario, OptimalILPAllocator(pricing=pricing)
    )
    lp = lp_bound(network, radio_map, pricing)
    lag = lagrangian_bound(
        compile_bound_problem(network, radio_map, pricing),
        max_iterations=300,
        target=ilp_profit,
    ).upper_bound
    dmra_profit = profit_of(small_scenario, DMRAAllocator(pricing=pricing))
    assert lag >= lp - tol(lp) >= ilp_profit - 2 * tol(ilp_profit)
    assert ilp_profit >= dmra_profit - tol(dmra_profit)
    certificate = certify_gap(
        network, radio_map, pricing,
        incumbent_profit=dmra_profit, method="lagrangian",
    )
    assert certificate.gap_fraction == pytest.approx(
        max(0.0, (certificate.upper_bound - dmra_profit)
            / certificate.upper_bound)
    )
