"""End-to-end integration: full pipeline, optimality gap, cross-module
consistency."""

import pytest

from repro.baselines.greedy import GreedyProfitAllocator
from repro.baselines.optimal import OptimalILPAllocator
from repro.compute.cloud import RemoteCloud
from repro.core.dmra import DMRAAllocator
from repro.econ.accounting import compute_profit
from repro.experiments import get_experiment, render_chart, write_series_csv
from repro.experiments.figures import Scale
from repro.experiments.io import read_series_csv
from repro.sim.config import ScenarioConfig
from repro.sim.runner import run_allocation
from repro.sim.scenario import build_scenario


class TestOptimalityGap:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_dmra_within_5_percent_of_optimum(self, seed):
        """On paper-sized underloaded instances the decentralized DMRA
        lands within a few percent of the centralized ILP optimum."""
        scenario = build_scenario(ScenarioConfig.paper(), 150, seed)
        ilp = run_allocation(
            scenario, OptimalILPAllocator(pricing=scenario.pricing)
        ).metrics.total_profit
        dmra = run_allocation(
            scenario, DMRAAllocator(pricing=scenario.pricing)
        ).metrics.total_profit
        assert dmra >= 0.95 * ilp

    def test_greedy_within_optimum(self):
        scenario = build_scenario(ScenarioConfig.paper(), 150, 4)
        ilp = run_allocation(
            scenario, OptimalILPAllocator(pricing=scenario.pricing)
        ).metrics.total_profit
        greedy = run_allocation(
            scenario, GreedyProfitAllocator(pricing=scenario.pricing)
        ).metrics.total_profit
        assert greedy <= ilp + 1e-6
        assert greedy >= 0.9 * ilp


class TestCrossModuleConsistency:
    def test_cloud_accounting_matches_assignment(self, loaded_scenario):
        """RemoteCloud fed from the assignment reproduces the metrics."""
        assignment = DMRAAllocator(
            pricing=loaded_scenario.pricing
        ).allocate(loaded_scenario.network, loaded_scenario.radio_map)
        cloud = RemoteCloud()
        for ue_id in assignment.cloud_ue_ids:
            cloud.forward(loaded_scenario.network.user_equipment(ue_id))
        outcome = run_allocation(
            loaded_scenario, DMRAAllocator(pricing=loaded_scenario.pricing)
        )
        assert cloud.task_count == outcome.metrics.cloud_forwarded
        assert cloud.forwarded_traffic_bps == pytest.approx(
            outcome.metrics.forwarded_traffic_bps
        )
        assert cloud.forwarded_crus == outcome.metrics.forwarded_crus

    def test_profit_statement_identity(self, loaded_scenario):
        """W_k = W_k^r - W_k^B - W_k^S holds per SP and in total."""
        assignment = DMRAAllocator(
            pricing=loaded_scenario.pricing
        ).allocate(loaded_scenario.network, loaded_scenario.radio_map)
        statement = compute_profit(
            loaded_scenario.network, assignment.grants, loaded_scenario.pricing
        )
        for entry in statement.by_sp.values():
            assert entry.profit == pytest.approx(
                entry.revenue - entry.bs_payments - entry.other_costs
            )
        assert statement.total_profit == pytest.approx(
            statement.total_revenue
            - statement.total_bs_payments
            - sum(e.other_costs for e in statement.by_sp.values())
        )

    def test_per_ue_margin_recomposition(self, small_scenario):
        """Total profit equals the sum of per-grant marginal profits."""
        from repro.econ.accounting import marginal_profit

        assignment = DMRAAllocator(
            pricing=small_scenario.pricing
        ).allocate(small_scenario.network, small_scenario.radio_map)
        statement = compute_profit(
            small_scenario.network, assignment.grants, small_scenario.pricing
        )
        recomposed = sum(
            marginal_profit(
                small_scenario.network, g.ue_id, g.bs_id, small_scenario.pricing
            )
            for g in assignment.grants
        )
        assert statement.total_profit == pytest.approx(recomposed)


class TestFigurePipeline:
    def test_smoke_figure_to_csv_and_back(self, tmp_path):
        experiment = get_experiment("fig4")
        result = experiment.run(Scale.smoke())
        series = [result[label] for label in result.labels()]
        chart = render_chart(series, title=experiment.title)
        assert experiment.title in chart
        path = write_series_csv(tmp_path / "fig4.csv", series, x_header="#UEs")
        restored = read_series_csv(path, x_header="#UEs")
        assert {s.label for s in restored} == set(result.labels())

    def test_smoke_fig2_preserves_dominance(self):
        """Even at smoke scale, DMRA's curve dominates DCSP's."""
        result = get_experiment("fig2").run(Scale.smoke())
        for x in result["dmra"].xs:
            assert (
                result["dmra"].value_at(x).mean
                >= result["dcsp"].value_at(x).mean
            )
