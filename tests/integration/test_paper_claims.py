"""Integration tests: the paper's qualitative claims on seeded scenarios.

These are the load-bearing reproduction checks: DMRA's dominance over
DCSP and NonCo (Figs. 2--5), profit growth and saturation in the UE
count, and the rho trends of Figs. 6--7.  All assertions run on fixed
seeds with paper-parameter scenarios (scaled down where wall-clock
demands it) so failures are deterministic.
"""

import pytest

from repro.baselines.dcsp import DCSPAllocator
from repro.baselines.nonco import NonCoAllocator
from repro.baselines.random_alloc import RandomAllocator
from repro.core.dmra import DMRAAllocator
from repro.sim.config import ScenarioConfig
from repro.sim.runner import run_allocation
from repro.sim.scenario import build_scenario


def profit_of(scenario, allocator):
    return run_allocation(scenario, allocator).metrics.total_profit


class TestDMRADominance:
    """The headline claim: DMRA yields the highest total SP profit."""

    @pytest.mark.parametrize("iota", [2.0, 1.1])
    @pytest.mark.parametrize("placement", ["regular", "random"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_dmra_beats_baselines_at_load(self, iota, placement, seed):
        config = ScenarioConfig.paper(
            cross_sp_markup=iota, placement=placement
        )
        scenario = build_scenario(config, ue_count=700, seed=seed)
        dmra = profit_of(scenario, DMRAAllocator(pricing=scenario.pricing))
        dcsp = profit_of(scenario, DCSPAllocator())
        nonco = profit_of(scenario, NonCoAllocator())
        assert dmra >= dcsp
        assert dmra >= nonco

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_dmra_beats_random_floor(self, seed):
        scenario = build_scenario(ScenarioConfig.paper(), 500, seed)
        dmra = profit_of(scenario, DMRAAllocator(pricing=scenario.pricing))
        random_floor = profit_of(scenario, RandomAllocator(seed=seed))
        assert dmra > random_floor

    def test_gap_over_nonco_grows_with_load(self):
        """NonCo's one-shot overflow hurts more as the network approaches
        saturation, so DMRA's lead widens across the paper's plotted
        400--900 UE range (beyond it, outside the published regime,
        nearest-BS packing eventually catches up)."""
        config = ScenarioConfig.paper()
        gaps = []
        for ue_count in (500, 900):
            scenario = build_scenario(config, ue_count, seed=3)
            dmra = profit_of(scenario, DMRAAllocator(pricing=scenario.pricing))
            nonco = profit_of(scenario, NonCoAllocator())
            gaps.append(dmra - nonco)
        assert gaps[1] > gaps[0]


class TestProfitCurveShape:
    """Figs. 2--5: profit rises with #UEs at a decreasing marginal rate."""

    def test_profit_monotone_in_ue_count(self):
        config = ScenarioConfig.paper()
        profits = []
        for ue_count in (300, 500, 700, 900):
            scenario = build_scenario(config, ue_count, seed=5)
            profits.append(
                profit_of(scenario, DMRAAllocator(pricing=scenario.pricing))
            )
        assert profits == sorted(profits)

    def test_marginal_profit_shrinks_near_saturation(self):
        config = ScenarioConfig.paper()
        profits = {}
        for ue_count in (400, 700, 1000, 1300):
            scenario = build_scenario(config, ue_count, seed=5)
            profits[ue_count] = profit_of(
                scenario, DMRAAllocator(pricing=scenario.pricing)
            )
        early_slope = (profits[700] - profits[400]) / 300.0
        late_slope = (profits[1300] - profits[1000]) / 300.0
        assert late_slope < early_slope

    def test_cloud_forwarding_appears_under_overload(self, loaded_scenario):
        outcome = run_allocation(
            loaded_scenario,
            DMRAAllocator(pricing=loaded_scenario.pricing),
        )
        assert outcome.metrics.cloud_forwarded > 0
        assert outcome.metrics.forwarded_traffic_bps > 0
        assert outcome.metrics.mean_rrb_utilization > 0.8


class TestIotaEffect:
    """The iota knob: larger markup pushes SPs toward their own BSs."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_same_sp_fraction_grows_with_iota(self, seed):
        fractions = {}
        for iota in (1.0, 2.0, 5.0):
            config = ScenarioConfig.paper(
                cross_sp_markup=iota,
                sp_cru_price=15.0,  # keep Eq. 16 satisfiable at iota=5
            )
            scenario = build_scenario(config, 400, seed=seed)
            outcome = run_allocation(
                scenario, DMRAAllocator(pricing=scenario.pricing)
            )
            fractions[iota] = outcome.metrics.same_sp_fraction
        assert fractions[2.0] >= fractions[1.0]
        assert fractions[5.0] >= fractions[2.0]


class TestRhoEffect:
    """Figs. 6--7: larger rho -> fewer forwarded tasks, no less profit."""

    def test_rho_reduces_forwarded_traffic(self):
        config = ScenarioConfig.paper(cross_sp_markup=1.1)
        forwarded = {}
        for rho in (0.0, 500.0):
            totals = []
            for seed in range(4):
                scenario = build_scenario(config, 1000, seed=seed)
                outcome = run_allocation(
                    scenario,
                    DMRAAllocator(pricing=scenario.pricing, rho=rho),
                )
                totals.append(outcome.metrics.forwarded_traffic_bps)
            forwarded[rho] = sum(totals) / len(totals)
        assert forwarded[500.0] < forwarded[0.0]

    def test_rho_does_not_reduce_profit(self):
        config = ScenarioConfig.paper(cross_sp_markup=2.0)
        profits = {}
        for rho in (0.0, 500.0):
            totals = []
            for seed in range(4):
                scenario = build_scenario(config, 1000, seed=seed)
                totals.append(
                    profit_of(
                        scenario,
                        DMRAAllocator(pricing=scenario.pricing, rho=rho),
                    )
                )
            profits[rho] = sum(totals) / len(totals)
        assert profits[500.0] >= profits[0.0] * 0.995
