"""Property-based round-trips for the IO layers (CSV series, traces,
assignment persistence) and SVG well-formedness."""

import xml.etree.ElementTree as ET

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dynamics.trace import ArrivalTrace, read_trace_csv, write_trace_csv
from repro.experiments.io import read_series_csv, write_series_csv
from repro.sim.results import Series

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestSeriesCsvRoundTrip:
    @RELAXED
    @given(
        data=st.dictionaries(
            keys=st.text(
                alphabet="abcdefghij-_", min_size=1, max_size=12
            ),
            values=st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=10_000),
                    st.lists(finite_floats, min_size=1, max_size=5),
                ),
                min_size=1,
                max_size=6,
                unique_by=lambda pair: pair[0],
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_round_trip_preserves_everything(self, data, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("csv")
        original = [
            Series.from_samples(label, samples)
            for label, samples in data.items()
        ]
        path = write_series_csv(tmp_path / "series.csv", original)
        restored = {s.label: s for s in read_series_csv(path)}
        assert set(restored) == set(data)
        for series in original:
            twin = restored[series.label]
            assert twin.xs == series.xs
            for point, other in zip(series.points, twin.points):
                assert other.value.mean == point.value.mean
                assert other.value.std == point.value.std
                assert other.value.count == point.value.count


class TestTraceRoundTrip:
    @RELAXED
    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            max_size=50,
        ).map(sorted)
    )
    def test_round_trip(self, times, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("trace")
        original = ArrivalTrace(times_s=tuple(times))
        path = write_trace_csv(tmp_path / "t.csv", original.times_s)
        restored = read_trace_csv(path)
        assert len(restored.times_s) == len(original.times_s)
        for a, b in zip(restored.times_s, original.times_s):
            assert abs(a - b) < 1e-5  # CSV keeps 6 decimals


class TestSvgProperties:
    @RELAXED
    @given(
        ue_count=st.integers(min_value=0, max_value=60),
        seed=st.integers(min_value=0, max_value=100),
        coverage=st.booleans(),
    )
    def test_always_well_formed(self, ue_count, seed, coverage):
        from repro.core.dmra import DMRAAllocator
        from repro.sim.config import ScenarioConfig
        from repro.sim.scenario import build_scenario
        from repro.viz.svg import render_svg

        scenario = build_scenario(ScenarioConfig.paper(), ue_count, seed)
        assignment = DMRAAllocator(pricing=scenario.pricing).allocate(
            scenario.network, scenario.radio_map
        )
        document = render_svg(
            scenario.network, assignment, show_coverage=coverage
        )
        root = ET.fromstring(document)
        assert root.tag.endswith("svg")
