"""Property-based tests for the sharded scale subsystem.

Three invariants the ISSUE pins:

* the partition covers every UE exactly once;
* every BS a shard-owned UE can reach is present in that shard's halo;
* reconciliation never leaves a BS over its CRU or RRB capacity, no
  matter how over-subscribed the shard claims are.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compute.cru import Grant
from repro.model.entities import BaseStation
from repro.model.geometry import Point, Rectangle
from repro.scale import ShardResult, partition_network, reconcile_claims
from repro.scale.partition import assign_shards, plan_tiles
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Partition properties
# ----------------------------------------------------------------------


@RELAXED
@given(
    seed=st.integers(min_value=0, max_value=1_000),
    count=st.integers(min_value=0, max_value=300),
    shards=st.integers(min_value=1, max_value=12),
    side=st.sampled_from([400.0, 1200.0, 2700.0]),
)
def test_assign_shards_covers_every_point_exactly_once(
    seed, count, shards, side
):
    region = Rectangle.square(side)
    rng = np.random.default_rng(seed)
    # Include points on and slightly past the far edges on purpose.
    xy = rng.uniform(-10.0, side + 10.0, size=(count, 2))
    nx, ny, _ = plan_tiles(region, shards)
    owners = assign_shards(xy, region, nx, ny)
    assert owners.shape == (count,)
    assert np.all((owners >= 0) & (owners < shards))


@RELAXED
@given(
    seed=st.integers(min_value=0, max_value=500),
    ue_count=st.integers(min_value=1, max_value=120),
    shards=st.integers(min_value=1, max_value=9),
    placement=st.sampled_from(["regular", "random"]),
)
def test_partition_owns_each_ue_once_with_complete_halos(
    seed, ue_count, shards, placement
):
    network = build_scenario(
        ScenarioConfig.paper(placement=placement),
        ue_count=ue_count,
        seed=seed,
    ).network
    plan = partition_network(network, shards)
    owned = [ue_id for tile in plan.tiles for ue_id in tile.ue_ids]
    assert sorted(owned) == [ue.ue_id for ue in network.user_equipments]
    for tile in plan.tiles:
        halo = set(tile.bs_ids)
        for ue_id in tile.ue_ids:
            assert set(network.covering_base_stations(ue_id)) <= halo


# ----------------------------------------------------------------------
# Reconciliation properties
# ----------------------------------------------------------------------


def _stations(rng, count, service_count):
    stations = []
    for bs_id in range(count):
        hosted = {
            service_id: int(rng.integers(0, 12))
            for service_id in range(service_count)
            if rng.random() < 0.8
        }
        stations.append(
            BaseStation(
                bs_id=bs_id,
                sp_id=int(rng.integers(0, 3)),
                position=Point(float(bs_id) * 10.0, 0.0),
                cru_capacity=hosted,
                rrb_capacity=int(rng.integers(1, 12)),
            )
        )
    return stations


def _random_results(rng, stations, shard_count, service_count):
    """Deliberately over-subscribed claims: each shard grants on its own."""
    results = []
    next_ue = 0
    for shard_index in range(shard_count):
        grants = []
        keys = []
        for _ in range(int(rng.integers(0, 14))):
            bs = stations[int(rng.integers(0, len(stations)))]
            service_id = int(rng.integers(0, service_count))
            grants.append(
                Grant(
                    bs_id=bs.bs_id,
                    ue_id=next_ue,
                    service_id=service_id,
                    crus=int(rng.integers(1, 6)),
                    rrbs=int(rng.integers(1, 6)),
                )
            )
            keys.append(
                (
                    int(rng.integers(0, 2)),
                    int(rng.integers(1, 8)),
                    int(rng.integers(2, 12)),
                    next_ue,
                )
            )
            next_ue += 1
        results.append(
            ShardResult(
                shard_index=shard_index,
                ue_count=len(grants),
                bs_count=len(stations),
                grants=tuple(grants),
                rank_keys=tuple(keys),
                cloud_ue_ids=frozenset(),
                rounds=1,
            )
        )
    return results


@RELAXED
@given(
    seed=st.integers(min_value=0, max_value=2_000),
    bs_count=st.integers(min_value=1, max_value=6),
    shard_count=st.integers(min_value=1, max_value=6),
)
def test_reconcile_never_exceeds_capacity(seed, bs_count, shard_count):
    rng = np.random.default_rng(seed)
    service_count = 3
    stations = _stations(rng, bs_count, service_count)
    results = _random_results(rng, stations, shard_count, service_count)
    outcome = reconcile_claims(stations, results)

    # Ledger conservation holds by construction; check it anyway.
    outcome.ledgers.check_invariants()

    # No BS over RRBs or over any per-service CRU pool.
    by_bs = {bs.bs_id: bs for bs in stations}
    usage_rrb: dict[int, int] = {}
    usage_cru: dict[tuple[int, int], int] = {}
    for shard_grants in outcome.surviving:
        for grant in shard_grants:
            usage_rrb[grant.bs_id] = usage_rrb.get(grant.bs_id, 0) + grant.rrbs
            key = (grant.bs_id, grant.service_id)
            usage_cru[key] = usage_cru.get(key, 0) + grant.crus
    for bs_id, used in usage_rrb.items():
        assert used <= by_bs[bs_id].rrb_capacity
    for (bs_id, service_id), used in usage_cru.items():
        assert used <= by_bs[bs_id].cru_capacity.get(service_id, 0)

    # Survivors + evictions account for every claim exactly once.
    total_claims = sum(len(result.grants) for result in results)
    total_surviving = sum(len(s) for s in outcome.surviving)
    assert total_surviving + len(outcome.evicted_ue_ids) == total_claims
    assert outcome.total_evictions == len(outcome.evicted_ue_ids)


@RELAXED
@given(seed=st.integers(min_value=0, max_value=2_000))
def test_reconcile_single_shard_admits_untouched(seed):
    """Claims that already fit (one consistent ledger) survive verbatim."""
    rng = np.random.default_rng(seed)
    stations = _stations(rng, 4, 3)
    # Build a feasible claim set: walk capacities down like a ledger.
    rrb_left = {bs.bs_id: bs.rrb_capacity for bs in stations}
    cru_left = {
        (bs.bs_id, sid): crus
        for bs in stations
        for sid, crus in bs.cru_capacity.items()
    }
    grants = []
    keys = []
    for ue_id in range(20):
        bs = stations[int(rng.integers(0, len(stations)))]
        sid = int(rng.integers(0, 3))
        crus = int(rng.integers(1, 4))
        rrbs = int(rng.integers(1, 4))
        if rrb_left[bs.bs_id] < rrbs:
            continue
        if cru_left.get((bs.bs_id, sid), 0) < crus:
            continue
        rrb_left[bs.bs_id] -= rrbs
        cru_left[(bs.bs_id, sid)] -= crus
        grants.append(
            Grant(
                bs_id=bs.bs_id, ue_id=ue_id, service_id=sid,
                crus=crus, rrbs=rrbs,
            )
        )
        keys.append((0, 1, crus + rrbs, ue_id))
    result = ShardResult(
        shard_index=0,
        ue_count=len(grants),
        bs_count=len(stations),
        grants=tuple(grants),
        rank_keys=tuple(keys),
        cloud_ue_ids=frozenset(),
        rounds=1,
    )
    outcome = reconcile_claims(stations, [result])
    assert outcome.surviving == (tuple(grants),)
    assert outcome.evicted_ue_ids == ()
    assert outcome.total_evictions == 0
