"""Property-based engine robustness: *any* policy yields a valid matching.

The engine must uphold the TPM constraints and terminate regardless of
how perverse the plugged-in preference rules are — adversarial scores
(random, constant, inverted) can change *who* gets served, never
*whether the result is feasible*.  Hypothesis generates policies from
random score tables and the suite asserts the invariants hold.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.matching import IterativeMatchingEngine, MatchingPolicy
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario


class TablePolicy(MatchingPolicy):
    """Preferences driven by a hash-salted pseudo-random table.

    Deterministic for a given salt (so failures are reproducible) while
    being structureless — the adversarial case for the engine.
    """

    name = "table"

    def __init__(self, salt: int) -> None:
        self.salt = salt

    def _value(self, *parts: int) -> int:
        value = self.salt & 0xFFFFFFFF
        for part in parts:
            value = (value * 1_000_003 + part + 0x9E3779B9) & 0xFFFFFFFF
        return value

    def ue_score(self, ue, bs_id, ctx):
        return float(self._value(0, ue.ue_id, bs_id))

    def bs_rank_key(self, ue_id, bs_id, ctx):
        return (self._value(1, ue_id, bs_id),)


class ConstantPolicy(MatchingPolicy):
    """Everything ties: pure tie-break behaviour."""

    name = "constant"

    def ue_score(self, ue, bs_id, ctx):
        return 0.0

    def bs_rank_key(self, ue_id, bs_id, ctx):
        return (0,)


RELAXED = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@RELAXED
@given(
    salt=st.integers(min_value=0, max_value=2**32 - 1),
    ue_count=st.integers(min_value=1, max_value=120),
    seed=st.integers(min_value=0, max_value=500),
)
def test_random_policy_always_valid(salt, ue_count, seed):
    scenario = build_scenario(ScenarioConfig.paper(), ue_count, seed)
    engine = IterativeMatchingEngine(TablePolicy(salt))
    assignment = engine.run(scenario.network, scenario.radio_map)
    assignment.validate(scenario.network, scenario.radio_map)
    # Partition property: every UE accounted for exactly once.
    assert (
        assignment.edge_served_count + assignment.cloud_count == ue_count
    )


@RELAXED
@given(
    ue_count=st.integers(min_value=1, max_value=120),
    seed=st.integers(min_value=0, max_value=500),
)
def test_constant_policy_always_valid(ue_count, seed):
    scenario = build_scenario(ScenarioConfig.paper(), ue_count, seed)
    engine = IterativeMatchingEngine(ConstantPolicy())
    assignment = engine.run(scenario.network, scenario.radio_map)
    assignment.validate(scenario.network, scenario.radio_map)


@RELAXED
@given(salt=st.integers(min_value=0, max_value=2**32 - 1))
def test_random_policy_no_stranded_capacity(salt):
    """Even an arbitrary policy must not forward a UE some BS could
    still fully fit — that guarantee comes from the engine's proposal
    walk, not the policy."""
    scenario = build_scenario(ScenarioConfig.paper(), 80, 9)
    engine = IterativeMatchingEngine(TablePolicy(salt))
    assignment = engine.run(scenario.network, scenario.radio_map)

    remaining_crus = {}
    remaining_rrbs = {}
    for bs in scenario.network.base_stations:
        for service_id, capacity in bs.cru_capacity.items():
            remaining_crus[(bs.bs_id, service_id)] = capacity
        remaining_rrbs[bs.bs_id] = bs.rrb_capacity
    for grant in assignment.grants:
        remaining_crus[(grant.bs_id, grant.service_id)] -= grant.crus
        remaining_rrbs[grant.bs_id] -= grant.rrbs
    for ue_id in assignment.cloud_ue_ids:
        ue = scenario.network.user_equipment(ue_id)
        for bs_id in scenario.network.candidate_base_stations(ue_id):
            fits = (
                remaining_crus[(bs_id, ue.service_id)] >= ue.cru_demand
                and remaining_rrbs[bs_id]
                >= scenario.radio_map.link(ue_id, bs_id).rrbs_required
            )
            assert not fits
