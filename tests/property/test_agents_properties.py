"""Agent-layer properties: termination, conservation, delay-0 parity.

Two claims about :class:`~repro.core.agents.DecentralizedDMRAAllocator`
that the deterministic suites sample only pointwise:

* for **any** broadcast delay in ``[0, 5]`` the agent exchange
  terminates and yields an assignment that passes full constraint
  validation (ledger conservation included) with every UE accounted
  for exactly once;
* at delay 0 it is **bit-identical** to the direct engine
  (:class:`~repro.core.dmra.DMRAAllocator`) on random scenarios —
  the decentralization equivalence, by property.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.agents import DecentralizedDMRAAllocator
from repro.core.dmra import DMRAAllocator
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario

RELAXED = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

scenario_params = st.fixed_dictionaries(
    {
        "ue_count": st.integers(min_value=10, max_value=120),
        "seed": st.integers(min_value=0, max_value=2**16),
        "placement": st.sampled_from(["regular", "random", "clustered"]),
    }
)


def build(params):
    return build_scenario(
        ScenarioConfig.paper(placement=params["placement"]),
        params["ue_count"],
        params["seed"],
    )


@RELAXED
@given(
    params=scenario_params,
    delay=st.integers(min_value=0, max_value=5),
    rho=st.sampled_from([0.0, 10.0, 200.0]),
)
def test_terminates_and_conserves_for_any_delay(params, delay, rho):
    scenario = build(params)
    allocator = DecentralizedDMRAAllocator(
        pricing=scenario.pricing,
        rho=rho,
        broadcast_delay_rounds=delay,
    )
    assignment = allocator.allocate(scenario.network, scenario.radio_map)
    # validate() re-checks every constraint: per-BS CRU/RRB budgets
    # (ledger conservation), coverage, and grant/cloud disjointness.
    assignment.validate(scenario.network, scenario.radio_map)
    served = {grant.ue_id for grant in assignment.grants}
    assert served.isdisjoint(assignment.cloud_ue_ids)
    assert served | set(assignment.cloud_ue_ids) == {
        ue.ue_id for ue in scenario.network.user_equipments
    }
    assert 0 <= assignment.rounds <= allocator.max_rounds


@RELAXED
@given(params=scenario_params, rho=st.sampled_from([0.0, 10.0, 200.0]))
def test_delay_zero_is_bit_identical_to_direct_engine(params, rho):
    scenario = build(params)
    direct = DMRAAllocator(pricing=scenario.pricing, rho=rho).allocate(
        scenario.network, scenario.radio_map
    )
    agents = DecentralizedDMRAAllocator(
        pricing=scenario.pricing, rho=rho
    ).allocate(scenario.network, scenario.radio_map)
    assert sorted(direct.association_pairs()) == sorted(
        agents.association_pairs()
    )
    assert direct.cloud_ue_ids == agents.cloud_ue_ids
    assert direct.rounds == agents.rounds
