"""Property tests: incremental re-matching equals from-scratch re-solve,
and event processing stays deterministic and ledger-conserving under
adversarial tapes — simultaneous timestamps, zero-length holdings.
"""

import os
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics.arrivals import BatchArrivals, PoissonArrivals
from repro.dynamics.online import OnlineConfig, run_online
from repro.sim.config import ScenarioConfig
from repro.stream import StreamConfig, run_stream

#: Small deployment so each Hypothesis example solves in milliseconds;
#: tight CRU capacity so random tapes actually hit the cloud path.
SMALL = ScenarioConfig(
    sp_count=2,
    bs_per_sp=1,
    region_side_m=400.0,
    cru_capacity_min=25,
    cru_capacity_max=25,
)


@dataclass(frozen=True)
class MixedHolding:
    """Deterministic durations with a coin-flipped zero-length fraction.

    Zero-length holdings make departures land on the *same timestamp*
    as their arrival — the adversarial case for event grouping (the
    library's :class:`DeterministicHolding` rejects zero on purpose).
    """

    duration_s: float
    zero_fraction: float

    def holding_time_s(self, rng: np.random.Generator) -> float:
        if self.zero_fraction and rng.random() < self.zero_fraction:
            return 0.0
        return self.duration_s


@contextmanager
def debug_checks():
    """Turn on the quiescence probe and full ledger scans for one run.

    Hypothesis reuses function-scoped fixtures across examples, so env
    toggling lives in a plain context manager instead of monkeypatch.
    """
    saved = {
        key: os.environ.get(key)
        for key in ("DMRA_DEBUG_STREAM", "DMRA_DEBUG_LEDGER")
    }
    os.environ["DMRA_DEBUG_STREAM"] = "1"
    os.environ["DMRA_DEBUG_LEDGER"] = "1"
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


@st.composite
def tapes(draw):
    return StreamConfig(
        horizon_s=draw(st.sampled_from([40.0, 80.0])),
        arrivals=PoissonArrivals(
            rate_per_s=draw(st.sampled_from([0.3, 0.8, 1.5]))
        ),
        holding=MixedHolding(
            duration_s=draw(st.sampled_from([5.0, 30.0, 90.0])),
            zero_fraction=draw(st.sampled_from([0.0, 0.3])),
        ),
        move_fraction=draw(st.sampled_from([0.0, 0.25])),
    )


class TestIncrementalEqualsRescratch:
    @settings(max_examples=20, deadline=None)
    @given(stream=tapes(), seed=st.integers(min_value=0, max_value=2**16))
    def test_random_tapes_bit_exact(self, stream, seed):
        with debug_checks():
            inc = run_stream(SMALL, stream, seed=seed, mode="incremental")
            res = run_stream(SMALL, stream, seed=seed, mode="rescratch")
        assert inc.digest == res.digest
        assert inc.admitted_edge == res.admitted_edge
        assert inc.admitted_cloud == res.admitted_cloud
        assert inc.readmitted == res.readmitted
        assert inc.cancelled == res.cancelled
        assert inc.total_profit == res.total_profit

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_simultaneous_timestamps(self, seed):
        """Batch arrivals share exact timestamps; zero holdings put the
        matching departures on those same instants."""
        stream = StreamConfig(
            horizon_s=50.0,
            arrivals=BatchArrivals(interval_s=10.0, batch_size=6),
            holding=MixedHolding(duration_s=10.0, zero_fraction=0.4),
        )
        with debug_checks():
            inc = run_stream(SMALL, stream, seed=seed, mode="incremental")
            res = run_stream(SMALL, stream, seed=seed, mode="rescratch")
        assert inc.digest == res.digest
        assert inc.cancelled == res.cancelled

    @settings(max_examples=8, deadline=None)
    @given(
        stream=tapes(),
        seed=st.integers(min_value=0, max_value=2**16),
        shards=st.sampled_from([2, 4]),
    )
    def test_sharded_random_tapes(self, stream, seed, shards):
        with debug_checks():
            inc = run_stream(
                SMALL, stream, seed=seed, mode="incremental", shards=shards
            )
            res = run_stream(
                SMALL, stream, seed=seed, mode="rescratch", shards=shards
            )
        assert inc.digest == res.digest


class TestStreamDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(stream=tapes(), seed=st.integers(min_value=0, max_value=2**16))
    def test_replay_reproducible(self, stream, seed):
        a = run_stream(SMALL, stream, seed=seed)
        b = run_stream(SMALL, stream, seed=seed)
        assert a.digest == b.digest
        assert a.events_processed == b.events_processed
        assert a.edge_active.samples == b.edge_active.samples

    @settings(max_examples=10, deadline=None)
    @given(stream=tapes(), seed=st.integers(min_value=0, max_value=2**16))
    def test_occupancy_conserved(self, stream, seed):
        outcome = run_stream(SMALL, stream, seed=seed)
        assert outcome.arrivals == outcome.departures
        assert outcome.admissions + outcome.cancelled == outcome.arrivals
        # Everyone departs by tape end, so state drains to zero.
        assert outcome.edge_active.last_value == 0.0
        assert outcome.cloud_active.last_value == 0.0
        assert outcome.rrb_utilization.last_value == 0.0


class TestOnlineAdversarialTapes:
    """The run_online event loop under the same adversarial schedules.

    Ledger conservation is enforced *inside* the run on every event
    (``DMRA_DEBUG_LEDGER=1`` forces the full scan), so surviving the
    run is itself the conservation assertion.
    """

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        zero_fraction=st.sampled_from([0.0, 0.3, 1.0]),
    )
    def test_batch_arrivals_with_zero_holdings(self, seed, zero_fraction):
        online = OnlineConfig(
            horizon_s=50.0,
            arrivals=BatchArrivals(interval_s=10.0, batch_size=5),
            holding=MixedHolding(
                duration_s=15.0, zero_fraction=zero_fraction
            ),
        )
        with debug_checks():
            a = run_online(SMALL, online, seed=seed)
            b = run_online(SMALL, online, seed=seed)
        assert a.events_processed == b.events_processed
        assert a.total_admitted_profit == b.total_admitted_profit
        assert a.edge_active.samples == b.edge_active.samples
        assert a.events_processed == 2 * a.arrivals
        assert a.edge_active.last_value == 0.0

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_kernels_agree_on_adversarial_tapes(self, seed):
        online = OnlineConfig(
            horizon_s=40.0,
            arrivals=BatchArrivals(interval_s=8.0, batch_size=6),
            holding=MixedHolding(duration_s=12.0, zero_fraction=0.3),
        )
        obj = run_online(SMALL, online, seed=seed, kernel="object")
        soa = run_online(SMALL, online, seed=seed, kernel="soa")
        assert obj.admitted_edge == soa.admitted_edge
        assert obj.admitted_cloud == soa.admitted_cloud
        assert obj.profit_by_sp == soa.profit_by_sp
