"""Property-based resource-safety invariants across all three schemes.

Whatever random scenario Hypothesis draws and whichever scheme runs on
it, two things must hold: no BS ledger ever goes negative (checked
*per round* through the engine's observer hook, not just at the end),
and every UE is accounted for exactly once — granted by exactly one BS
or listed in ``cloud_ue_ids``, never both, never neither.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.dcsp import DCSPAllocator, DCSPPolicy
from repro.baselines.nonco import NonCoAllocator
from repro.compute.cru import LedgerPool
from repro.core.dmra import DMRAAllocator, DMRAPolicy
from repro.core.matching import IterativeMatchingEngine
from repro.econ.pricing import PaperPricing
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario

RELAXED = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

scenario_params = {
    "ue_count": st.integers(min_value=1, max_value=150),
    "seed": st.integers(min_value=0, max_value=1000),
    "placement": st.sampled_from(["regular", "random", "clustered"]),
}


def _assert_partition(assignment, network):
    """Every UE granted exactly once or cloud-bound — never both."""
    granted = [g.ue_id for g in assignment.grants]
    assert len(granted) == len(set(granted)), "UE granted twice"
    overlap = set(granted) & assignment.cloud_ue_ids
    assert not overlap, f"UEs both granted and cloud-bound: {overlap}"
    assert set(granted) | assignment.cloud_ue_ids == {
        ue.ue_id for ue in network.user_equipments
    }


def _matching_scheme_invariants(scenario, policy):
    """Run the engine under an observer that audits ledgers every round."""
    ledgers = LedgerPool(scenario.network.base_stations)
    audited_rounds = []

    def audit(stats):
        for ledger in ledgers:
            ledger.check_invariants()
            assert ledger.remaining_rrbs >= 0
            for crus in ledger.remaining_crus_by_service().values():
                assert crus >= 0
        audited_rounds.append(stats.round_number)

    engine = IterativeMatchingEngine(policy)
    assignment = engine.run(
        scenario.network, scenario.radio_map,
        ledgers=ledgers, observer=audit,
    )
    assert audited_rounds, "observer never called"
    assignment.validate(scenario.network, scenario.radio_map)
    _assert_partition(assignment, scenario.network)


@RELAXED
@given(**scenario_params)
def test_dmra_never_overdraws_and_partitions(ue_count, seed, placement):
    scenario = build_scenario(
        ScenarioConfig.paper(placement=placement), ue_count, seed
    )
    _matching_scheme_invariants(
        scenario, DMRAPolicy(pricing=scenario.pricing)
    )


@RELAXED
@given(**scenario_params)
def test_dcsp_never_overdraws_and_partitions(ue_count, seed, placement):
    scenario = build_scenario(
        ScenarioConfig.paper(placement=placement), ue_count, seed
    )
    _matching_scheme_invariants(scenario, DCSPPolicy())


@RELAXED
@given(**scenario_params)
def test_nonco_partitions_and_validates(ue_count, seed, placement):
    scenario = build_scenario(
        ScenarioConfig.paper(placement=placement), ue_count, seed
    )
    assignment = NonCoAllocator().allocate(
        scenario.network, scenario.radio_map
    )
    assignment.validate(scenario.network, scenario.radio_map)
    _assert_partition(assignment, scenario.network)


@RELAXED
@given(
    ue_count=st.integers(min_value=1, max_value=100),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_all_three_allocators_agree_on_population_partition(ue_count, seed):
    """Allocator-level smoke over the same scenario: each scheme's result
    is a valid partition of the same UE population."""
    scenario = build_scenario(ScenarioConfig.paper(), ue_count, seed)
    for allocator in (
        DMRAAllocator(pricing=PaperPricing()),
        DCSPAllocator(),
        NonCoAllocator(),
    ):
        assignment = allocator.allocate(
            scenario.network, scenario.radio_map
        )
        _assert_partition(assignment, scenario.network)
