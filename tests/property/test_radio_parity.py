"""Property-based parity: the vectorized radio-map builder must agree
with the scalar reference loop link-for-link on random scenarios —
exact candidate sets and integer RRB demands, floats to <=1e-9
relative."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.radio.channel import build_radio_map, build_radio_map_reference
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario

REL_TOL = 1e-9

scenario_params = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=10_000),
        "ue_count": st.integers(min_value=1, max_value=60),
        "placement": st.sampled_from(["regular", "random"]),
        "rate_model": st.sampled_from(["shannon", "mcs"]),
        "interference_floor_dbm": st.sampled_from([None, -110.0, -95.0]),
        "coverage": st.sampled_from([300.0, 500.0, 800.0]),
    }
)

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= REL_TOL * max(abs(a), abs(b), 1e-30)


@RELAXED
@given(params=scenario_params)
def test_vectorized_map_matches_scalar_reference(params):
    # Scale m_k with the worst-case BS price so Eq. 16 stays satisfiable
    # at every generated coverage radius.
    worst_price = 1.0 * (2.0 + 0.01 * params["coverage"])
    config = ScenarioConfig.paper(
        placement=params["placement"],
        rate_model=params["rate_model"],
        interference_floor_dbm=params["interference_floor_dbm"],
        coverage_radius_m=params["coverage"],
        sp_cru_price=worst_price + 0.5 + 1.0,
    )
    scenario = build_scenario(config, params["ue_count"], params["seed"])
    budget = config.link_budget()
    rate_model = config.rate_model_fn()
    vectorized = build_radio_map(
        scenario.network, budget, rate_model=rate_model
    )
    reference = build_radio_map_reference(
        scenario.network, budget, rate_model=rate_model
    )

    assert len(vectorized) == len(reference)
    ref_links = {(m.ue_id, m.bs_id): m for m in reference}
    vec_links = {(m.ue_id, m.bs_id): m for m in vectorized}
    assert vec_links.keys() == ref_links.keys()
    for key, ref in ref_links.items():
        vec = vec_links[key]
        assert vec.rrbs_required == ref.rrbs_required
        assert _close(vec.distance_m, ref.distance_m)
        assert _close(vec.sinr_linear, ref.sinr_linear)
        assert _close(vec.per_rrb_rate_bps, ref.per_rrb_rate_bps)
        assert vec.feasible == ref.feasible
