"""SoA kernel parity: bit-identical to the object engine, by property.

The SoA kernel (:class:`repro.core.soa.SoAMatchingEngine`) promises a
**bit-identical** assignment to the object engine for any scenario the
object engine accepts under a plain DMRA policy — same grants tuple
(order included), same cloud set, same round count.  Hypothesis draws
random small scenarios across placements, ``rho`` regimes, and the
``same_sp_priority`` ablation; two deterministic edge cases ride along:
an exhaustion scenario where every candidate pair is *born retired*
(infeasible before round 1), and a NaN-returning pricing policy that
must raise the same :class:`~repro.errors.AllocationError` from both
kernels.
"""

import pytest
from conftest import make_tiny_network
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dmra import DMRAPolicy
from repro.core.matching import IterativeMatchingEngine
from repro.core.soa import SoAMatchingEngine
from repro.errors import AllocationError
from repro.radio.channel import build_radio_map
from repro.radio.sinr import LinkBudget
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario

RELAXED = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _assert_bit_parity(network, radio_map, policy_kwargs):
    obj = IterativeMatchingEngine(DMRAPolicy(**policy_kwargs)).run(
        network, radio_map
    )
    soa = SoAMatchingEngine(DMRAPolicy(**policy_kwargs)).run(
        network, radio_map
    )
    assert soa.grants == obj.grants  # includes order
    assert soa.cloud_ue_ids == obj.cloud_ue_ids
    assert soa.rounds == obj.rounds
    return obj


@RELAXED
@given(
    ue_count=st.integers(min_value=1, max_value=150),
    seed=st.integers(min_value=0, max_value=1000),
    placement=st.sampled_from(["regular", "random", "clustered"]),
    rho=st.sampled_from([0.0, 10.0, 1e6]),
    same_sp_priority=st.booleans(),
)
def test_soa_matches_object_engine(
    ue_count, seed, placement, rho, same_sp_priority
):
    scenario = build_scenario(
        ScenarioConfig.paper(placement=placement), ue_count, seed
    )
    _assert_bit_parity(
        scenario.network,
        scenario.radio_map,
        dict(
            pricing=scenario.pricing,
            rho=rho,
            same_sp_priority=same_sp_priority,
        ),
    )


@RELAXED
@given(
    ue_count=st.integers(min_value=50, max_value=400),
    seed=st.integers(min_value=0, max_value=100),
)
def test_soa_matches_object_engine_under_contention(ue_count, seed):
    """A small dense region forces evictions and cloud fallbacks."""
    config = ScenarioConfig.paper(region_side_m=900.0, bs_per_sp=2)
    scenario = build_scenario(config, ue_count, seed)
    outcome = _assert_bit_parity(
        scenario.network,
        scenario.radio_map,
        dict(pricing=scenario.pricing, rho=config.rho),
    )
    # The draw range is chosen so contention is usually real; when it
    # is, parity above covered the eviction and exhaustion branches.
    assert len(outcome.grants) + len(outcome.cloud_ue_ids) == ue_count


def test_every_candidate_born_retired_exhausts_identically():
    """UEs whose demand exceeds every BS's capacity from the start:
    all pairs are infeasible before round 1, so both kernels must
    cloud-forward everyone in the probe round (zero productive
    rounds, zero grants)."""
    network = make_tiny_network(
        ue_specs=[
            dict(ue_id=0, cru_demand=50),
            dict(ue_id=1, cru_demand=50),
        ],
        bs_specs=None,  # default BSs hold 20 CRUs per service
    )
    radio_map = build_radio_map(network, LinkBudget())
    from repro.econ.pricing import PaperPricing

    for engine_cls in (IterativeMatchingEngine, SoAMatchingEngine):
        assignment = engine_cls(DMRAPolicy(pricing=PaperPricing())).run(
            network, radio_map
        )
        assert assignment.grants == ()
        assert assignment.cloud_ue_ids == {0, 1}
        assert assignment.rounds == 0


class _NaNPricing:
    """Pricing stub whose Eq. 9--10 price is NaN for every pair."""

    def price_per_cru(self, distance_m: float, same_sp: bool) -> float:
        return float("nan")


def test_nan_policy_raises_identically_in_both_kernels():
    network = make_tiny_network(ue_specs=[dict(ue_id=0)])
    radio_map = build_radio_map(network, LinkBudget())
    for engine_cls in (IterativeMatchingEngine, SoAMatchingEngine):
        engine = engine_cls(DMRAPolicy(pricing=_NaNPricing()))
        with pytest.raises(AllocationError, match="NaN.*UE 0"):
            engine.run(network, radio_map)
