"""Property-based tests: every allocator satisfies the TPM constraints
on randomized scenarios, and the optimum dominates every heuristic."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.dcsp import DCSPAllocator
from repro.baselines.greedy import GreedyProfitAllocator
from repro.baselines.nonco import NonCoAllocator
from repro.baselines.optimal import OptimalILPAllocator
from repro.baselines.random_alloc import RandomAllocator
from repro.core.dmra import DMRAAllocator
from repro.econ.accounting import compute_profit
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario

scenario_params = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=10_000),
        "ue_count": st.integers(min_value=1, max_value=80),
        "placement": st.sampled_from(["regular", "random"]),
        "iota": st.sampled_from([1.0, 1.1, 2.0, 5.0]),
        "coverage": st.sampled_from([300.0, 500.0, 800.0]),
        "hosted_fraction": st.sampled_from([0.5, 1.0]),
    }
)

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_scenario(params):
    # Scale m_k with the worst-case BS price so Eq. 16 stays satisfiable
    # for every generated (iota, coverage) combination.
    worst_price = 1.0 * (params["iota"] + 0.01 * params["coverage"])
    config = ScenarioConfig.paper(
        placement=params["placement"],
        cross_sp_markup=params["iota"],
        coverage_radius_m=params["coverage"],
        hosted_fraction=params["hosted_fraction"],
        sp_cru_price=worst_price + 0.5 + 1.0,
    )
    return build_scenario(config, params["ue_count"], params["seed"])


@RELAXED
@given(params=scenario_params)
def test_dmra_always_valid(params):
    scenario = make_scenario(params)
    assignment = DMRAAllocator(pricing=scenario.pricing).allocate(
        scenario.network, scenario.radio_map
    )
    assignment.validate(scenario.network, scenario.radio_map)


@RELAXED
@given(params=scenario_params)
def test_all_heuristics_valid_and_partition_ues(params):
    scenario = make_scenario(params)
    allocators = [
        DMRAAllocator(pricing=scenario.pricing),
        DCSPAllocator(),
        NonCoAllocator(),
        GreedyProfitAllocator(pricing=scenario.pricing),
        RandomAllocator(seed=params["seed"]),
    ]
    all_ue_ids = {ue.ue_id for ue in scenario.network.user_equipments}
    for allocator in allocators:
        assignment = allocator.allocate(scenario.network, scenario.radio_map)
        assignment.validate(scenario.network, scenario.radio_map)
        assert assignment.edge_served_ue_ids | assignment.cloud_ue_ids == all_ue_ids
        assert not assignment.edge_served_ue_ids & assignment.cloud_ue_ids


@RELAXED
@given(params=scenario_params)
def test_edge_profit_is_non_negative(params):
    """Eq. 16 guarantees every edge grant is individually profitable, so
    no allocator can produce negative total profit."""
    scenario = make_scenario(params)
    for allocator in (
        DMRAAllocator(pricing=scenario.pricing),
        NonCoAllocator(),
        RandomAllocator(seed=1),
    ):
        assignment = allocator.allocate(scenario.network, scenario.radio_map)
        statement = compute_profit(
            scenario.network, assignment.grants, scenario.pricing
        )
        assert statement.total_profit >= -1e-9
        for entry in statement.by_sp.values():
            assert entry.profit >= -1e-9


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=1000),
    ue_count=st.integers(min_value=1, max_value=40),
)
def test_optimum_dominates_heuristics(seed, ue_count):
    scenario = build_scenario(ScenarioConfig.paper(), ue_count, seed)
    ilp = OptimalILPAllocator(pricing=scenario.pricing).allocate(
        scenario.network, scenario.radio_map
    )
    best = compute_profit(
        scenario.network, ilp.grants, scenario.pricing
    ).total_profit
    for allocator in (
        DMRAAllocator(pricing=scenario.pricing),
        DCSPAllocator(),
        NonCoAllocator(),
        GreedyProfitAllocator(pricing=scenario.pricing),
    ):
        assignment = allocator.allocate(scenario.network, scenario.radio_map)
        profit = compute_profit(
            scenario.network, assignment.grants, scenario.pricing
        ).total_profit
        assert profit <= best + 1e-6


@RELAXED
@given(params=scenario_params)
def test_dmra_serves_every_ue_it_could(params):
    """After DMRA terminates, no cloud-forwarded UE has a candidate BS
    that could still fit its whole demand (no stranded capacity)."""
    scenario = make_scenario(params)
    assignment = DMRAAllocator(pricing=scenario.pricing).allocate(
        scenario.network, scenario.radio_map
    )
    remaining_crus: dict[tuple[int, int], int] = {}
    remaining_rrbs: dict[int, int] = {}
    for bs in scenario.network.base_stations:
        for service_id, capacity in bs.cru_capacity.items():
            remaining_crus[(bs.bs_id, service_id)] = capacity
        remaining_rrbs[bs.bs_id] = bs.rrb_capacity
    for grant in assignment.grants:
        remaining_crus[(grant.bs_id, grant.service_id)] -= grant.crus
        remaining_rrbs[grant.bs_id] -= grant.rrbs
    for ue_id in assignment.cloud_ue_ids:
        ue = scenario.network.user_equipment(ue_id)
        for bs_id in scenario.network.candidate_base_stations(ue_id):
            fits = (
                remaining_crus.get((bs_id, ue.service_id), 0) >= ue.cru_demand
                and remaining_rrbs[bs_id]
                >= scenario.radio_map.link(ue_id, bs_id).rrbs_required
            )
            assert not fits, (
                f"UE {ue_id} was forwarded although BS {bs_id} still fits it"
            )


@RELAXED
@given(params=scenario_params)
def test_dmra_is_deterministic(params):
    scenario = make_scenario(params)
    allocator = DMRAAllocator(pricing=scenario.pricing)
    a = allocator.allocate(scenario.network, scenario.radio_map)
    b = allocator.allocate(scenario.network, scenario.radio_map)
    assert a.association_pairs() == b.association_pairs()
    assert a.cloud_ue_ids == b.cloud_ue_ids
