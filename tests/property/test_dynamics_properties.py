"""Property-based tests for the dynamics layer and analysis helpers."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.fairness import jain_index
from repro.dynamics.arrivals import (
    DeterministicHolding,
    ExponentialHolding,
    PoissonArrivals,
)
from repro.dynamics.events import Event, EventKind, EventQueue
from repro.dynamics.online import OnlineConfig, run_online
from repro.dynamics.timeseries import StepSeries
from repro.sim.config import ScenarioConfig

RELAXED = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestEventQueueProperties:
    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    def test_pops_in_non_decreasing_time_order(self, times):
        queue = EventQueue()
        for ue_id, t in enumerate(times):
            queue.push(Event(t, EventKind.ARRIVAL, ue_id))
        popped = [queue.pop().time_s for _ in range(len(times))]
        assert popped == sorted(popped)
        assert not queue


class TestStepSeriesProperties:
    @given(
        samples=st.lists(
            st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_time_average_within_value_range(self, samples):
        series = StepSeries("x")
        for index, value in enumerate(samples):
            series.record(float(index), value)
        average = series.time_average(float(len(samples)))
        assert min(samples) - 1e-9 <= average <= max(samples) + 1e-9

    @given(
        value=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        gaps=st.lists(
            st.floats(min_value=1e-3, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        extra=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    )
    def test_constant_series_average_is_the_constant(self, value, gaps, extra):
        # Regression: the time average of a constant series must be that
        # constant for any cutoff at or past the first sample.
        series = StepSeries("x")
        t = 0.0
        series.record(t, value)
        for gap in gaps:
            t += gap
            series.record(t, value)
        for until in (0.0, t / 2, t, t + extra):
            assert series.time_average(until) == pytest.approx(value)


class TestJainProperties:
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    def test_bounds(self, values):
        index = jain_index(values)
        assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9

    @given(
        value=st.floats(min_value=0.1, max_value=1e6),
        count=st.integers(min_value=1, max_value=20),
    )
    def test_equal_vectors_are_fair(self, value, count):
        assert abs(jain_index([value] * count) - 1.0) < 1e-9


class TestOnlineProperties:
    @RELAXED
    @given(
        rate=st.floats(min_value=0.5, max_value=6.0),
        mean_holding=st.floats(min_value=20.0, max_value=200.0),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_online_invariants(self, rate, mean_holding, seed):
        config = ScenarioConfig.paper()
        online = OnlineConfig(
            horizon_s=120.0,
            arrivals=PoissonArrivals(rate_per_s=rate),
            holding=ExponentialHolding(mean_s=mean_holding),
        )
        outcome = run_online(config, online, seed=seed)
        # Conservation: one departure scheduled per arrival.
        assert outcome.events_processed == 2 * outcome.arrivals
        assert outcome.admitted_edge + outcome.admitted_cloud == outcome.arrivals
        assert 0.0 <= outcome.blocking_probability <= 1.0
        assert outcome.total_admitted_profit >= 0.0
        assert 0.0 <= outcome.mean_rrb_utilization <= 1.0
        assert sum(outcome.profit_by_sp.values()) >= 0.0

    @RELAXED
    @given(seed=st.integers(min_value=0, max_value=50))
    def test_deterministic_holding_conserves_population(self, seed):
        config = ScenarioConfig.paper()
        online = OnlineConfig(
            horizon_s=100.0,
            arrivals=PoissonArrivals(rate_per_s=2.0),
            holding=DeterministicHolding(duration_s=15.0),
        )
        outcome = run_online(config, online, seed=seed)
        # Every task admitted at t < 85 has departed by the last event,
        # so the final active count is at most the arrivals of the last
        # holding window.
        assert outcome.edge_active.last_value <= outcome.arrivals
        assert outcome.edge_active.last_value >= 0
