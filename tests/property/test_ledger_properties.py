"""Property-based tests: the BS ledger conserves resources under any
sequence of grants and releases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.compute.cru import BSLedger
from repro.errors import CapacityError, ConfigurationError, UnknownEntityError
from repro.model.entities import BaseStation
from repro.model.geometry import Point


def make_bs(cru0=30, cru1=25, rrbs=12):
    return BaseStation(
        bs_id=0,
        sp_id=0,
        position=Point(0, 0),
        cru_capacity={0: cru0, 1: cru1},
        rrb_capacity=rrbs,
    )


@given(
    crus=st.integers(min_value=1, max_value=40),
    rrbs=st.integers(min_value=1, max_value=20),
)
def test_single_grant_accepted_iff_it_fits(crus, rrbs):
    ledger = BSLedger(make_bs())
    fits = crus <= 30 and rrbs <= 12
    if fits:
        ledger.grant(ue_id=1, service_id=0, crus=crus, rrbs=rrbs)
        assert ledger.remaining_crus(0) == 30 - crus
        assert ledger.remaining_rrbs == 12 - rrbs
    else:
        with pytest.raises(CapacityError):
            ledger.grant(ue_id=1, service_id=0, crus=crus, rrbs=rrbs)
        assert ledger.remaining_crus(0) == 30
        assert ledger.remaining_rrbs == 12
    ledger.check_invariants()


@given(
    demands=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1),  # service id
            st.integers(min_value=1, max_value=8),  # crus
            st.integers(min_value=1, max_value=4),  # rrbs
        ),
        min_size=1,
        max_size=30,
    )
)
def test_grant_stream_never_oversubscribes(demands):
    ledger = BSLedger(make_bs())
    for ue_id, (service_id, crus, rrbs) in enumerate(demands):
        if ledger.can_grant(ue_id, service_id, crus, rrbs):
            ledger.grant(ue_id, service_id, crus, rrbs)
    granted_crus_0 = sum(
        g.crus for g in ledger.grants.values() if g.service_id == 0
    )
    granted_crus_1 = sum(
        g.crus for g in ledger.grants.values() if g.service_id == 1
    )
    granted_rrbs = sum(g.rrbs for g in ledger.grants.values())
    assert granted_crus_0 <= 30
    assert granted_crus_1 <= 25
    assert granted_rrbs <= 12
    ledger.check_invariants()


class LedgerMachine(RuleBasedStateMachine):
    """Random interleavings of grant/release must conserve resources."""

    def __init__(self):
        super().__init__()
        self.ledger = BSLedger(make_bs())
        self.next_ue = 0
        self.model_grants: dict[int, tuple[int, int, int]] = {}

    @rule(
        service_id=st.integers(min_value=0, max_value=2),
        crus=st.integers(min_value=0, max_value=12),
        rrbs=st.integers(min_value=0, max_value=6),
    )
    def try_grant(self, service_id, crus, rrbs):
        ue_id = self.next_ue
        self.next_ue += 1
        try:
            self.ledger.grant(ue_id, service_id, crus, rrbs)
        except (CapacityError, ConfigurationError):
            return
        self.model_grants[ue_id] = (service_id, crus, rrbs)

    @rule(offset=st.integers(min_value=0, max_value=40))
    def try_release(self, offset):
        if not self.model_grants:
            with pytest.raises(UnknownEntityError):
                self.ledger.release(999_999)
            return
        ue_id = sorted(self.model_grants)[offset % len(self.model_grants)]
        self.ledger.release(ue_id)
        del self.model_grants[ue_id]

    @invariant()
    def ledger_matches_model(self):
        self.ledger.check_invariants()
        assert self.ledger.served_ue_ids == set(self.model_grants)
        for service_id, capacity in ((0, 30), (1, 25)):
            used = sum(
                crus
                for sid, crus, _ in self.model_grants.values()
                if sid == service_id
            )
            assert self.ledger.remaining_crus(service_id) == capacity - used
        used_rrbs = sum(r for _, _, r in self.model_grants.values())
        assert self.ledger.remaining_rrbs == 12 - used_rrbs


TestLedgerStateMachine = LedgerMachine.TestCase
TestLedgerStateMachine.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
