"""Property-based tests for the hosting planner and ownership interleave."""

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.compute.placement_opt import plan_hosting
from repro.sim.config import ScenarioConfig

weights_strategy = st.lists(
    st.floats(min_value=0.0, max_value=100.0),
    min_size=2,
    max_size=10,
).filter(lambda ws: sum(ws) > 0)


class TestPlanHostingProperties:
    @given(
        bs_count=st.integers(min_value=1, max_value=40),
        weights=weights_strategy,
        slots=st.integers(min_value=1, max_value=10),
    )
    def test_structural_invariants(self, bs_count, weights, slots):
        service_count = len(weights)
        assume(slots <= service_count)
        assume(bs_count * slots >= service_count)
        plan = plan_hosting(bs_count, slots, weights)
        # One hosting set per BS, each exactly the slot budget, all valid
        # service ids, full catalog coverage.
        assert len(plan) == bs_count
        assert all(len(h) == slots for h in plan)
        assert all(
            all(0 <= j < service_count for j in h) for h in plan
        )
        assert set().union(*plan) == set(range(service_count))

    @given(
        bs_count=st.integers(min_value=2, max_value=40),
        weights=weights_strategy,
        slots=st.integers(min_value=1, max_value=10),
    )
    def test_replication_weakly_follows_weights(
        self, bs_count, weights, slots
    ):
        service_count = len(weights)
        assume(slots < service_count)
        assume(bs_count * slots >= service_count)
        plan = plan_hosting(bs_count, slots, weights)
        replicas = [
            sum(1 for h in plan if j in h) for j in range(service_count)
        ]
        heaviest = max(range(service_count), key=lambda j: weights[j])
        lightest = min(range(service_count), key=lambda j: weights[j])
        assert replicas[heaviest] >= replicas[lightest]


class TestOwnershipProperties:
    @given(
        counts=st.lists(
            st.integers(min_value=1, max_value=20), min_size=1, max_size=8
        )
    )
    def test_ownership_is_a_permutation_of_fleets(self, counts):
        config = ScenarioConfig.paper(
            sp_count=len(counts), sp_bs_counts=tuple(counts)
        )
        ownership = config.bs_ownership()
        assert len(ownership) == sum(counts)
        for sp_id, count in enumerate(counts):
            assert ownership.count(sp_id) == count
