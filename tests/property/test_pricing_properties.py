"""Property-based tests for pricing, tariffs, and radio arithmetic."""

import math

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.econ.pricing import PaperPricing
from repro.econ.tariffs import max_margin
from repro.model.entities import ServiceProvider
from repro.radio.ofdma import per_rrb_rate_bps, rrbs_required
from repro.radio.pathloss import PaperPathLoss
from repro.radio.sinr import LinkBudget

distances = st.floats(min_value=0.0, max_value=5000.0, allow_nan=False)
positive_prices = st.floats(min_value=0.01, max_value=100.0)
markups = st.floats(min_value=1.0, max_value=10.0)
weights = st.floats(min_value=0.0, max_value=1.0)


class TestPricingProperties:
    @given(d=distances, b=positive_prices, iota=markups, sigma=weights)
    def test_cross_sp_never_cheaper(self, d, b, iota, sigma):
        pricing = PaperPricing(
            base_price=b, cross_sp_markup=iota, distance_weight=sigma
        )
        assert pricing.price_per_cru(d, False) >= pricing.price_per_cru(d, True)

    @given(
        d1=distances, d2=distances, b=positive_prices,
        iota=markups, sigma=weights,
    )
    def test_price_monotone_in_distance(self, d1, d2, b, iota, sigma):
        assume(d1 <= d2)
        pricing = PaperPricing(
            base_price=b, cross_sp_markup=iota, distance_weight=sigma
        )
        for same_sp in (True, False):
            assert pricing.price_per_cru(d1, same_sp) <= pricing.price_per_cru(
                d2, same_sp
            )

    @given(d=distances, b=positive_prices, iota=markups, sigma=weights)
    def test_max_price_is_supremum(self, d, b, iota, sigma):
        pricing = PaperPricing(
            base_price=b, cross_sp_markup=iota, distance_weight=sigma
        )
        bound = pricing.max_price(5000.0)
        for same_sp in (True, False):
            assert pricing.price_per_cru(d, same_sp) <= bound + 1e-9

    @given(d=distances, price=positive_prices)
    def test_margin_definition(self, d, price):
        sp = ServiceProvider(sp_id=0, cru_price=200.0, other_cost=1.0)
        assert max_margin(sp, price) == 200.0 - 1.0 - price


class TestRadioProperties:
    @given(
        sinr1=st.floats(min_value=0.0, max_value=1e9),
        sinr2=st.floats(min_value=0.0, max_value=1e9),
    )
    def test_rate_monotone_in_sinr(self, sinr1, sinr2):
        assume(sinr1 <= sinr2)
        assert per_rrb_rate_bps(180e3, sinr1) <= per_rrb_rate_bps(180e3, sinr2)

    @given(
        demand=st.floats(min_value=1.0, max_value=1e8),
        rate=st.floats(min_value=1.0, max_value=1e8),
    )
    def test_rrbs_required_is_minimal_cover(self, demand, rate):
        n = rrbs_required(demand, rate)
        assert n * rate >= demand  # enough capacity
        assert (n - 1) * rate < demand  # and not one RRB more than needed

    @given(
        d1=st.floats(min_value=0.0, max_value=5000.0),
        d2=st.floats(min_value=0.0, max_value=5000.0),
    )
    def test_pathloss_monotone(self, d1, d2):
        assume(d1 <= d2)
        model = PaperPathLoss()
        assert model.loss_db(d1) <= model.loss_db(d2)

    @given(
        d=st.floats(min_value=1.0, max_value=5000.0),
        tx=st.floats(min_value=-20.0, max_value=40.0),
    )
    def test_sinr_positive_and_finite(self, d, tx):
        sinr = LinkBudget().sinr(d, tx)
        assert sinr > 0.0
        assert math.isfinite(sinr)

    @given(
        d=st.floats(min_value=1.0, max_value=5000.0),
        extra_db=st.floats(min_value=0.1, max_value=30.0),
    )
    def test_more_power_more_sinr(self, d, extra_db):
        budget = LinkBudget()
        assert budget.sinr(d, 10.0 + extra_db) > budget.sinr(d, 10.0)
