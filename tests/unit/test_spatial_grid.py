"""Unit tests for the spatial index and the network's geometry modes.

The grid mode must be *bit-identical* to the dense path — the radio
map, the matching engine, and the sharded scale runner all rely on
that — so these tests compare exact floats, not approximations.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.model.geometry import Point, SpatialGrid, pairwise_distances_m
from repro.model.network import MECNetwork
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario


def _random_points(rng, count, side=1000.0):
    xy = rng.uniform(0.0, side, size=(count, 2))
    return [Point(float(x), float(y)) for x, y in xy]


class TestSpatialGrid:
    def test_query_matches_dense_nonzero_order_and_values(self):
        rng = np.random.default_rng(3)
        targets = _random_points(rng, 40)
        queries = _random_points(rng, 70)
        radius = 260.0
        grid = SpatialGrid(targets, cell_size_m=radius)
        rows, cols, dists = grid.query_radius(queries, radius)
        dense = pairwise_distances_m(queries, targets)
        want_rows, want_cols = np.nonzero(dense <= radius)
        assert rows.tolist() == want_rows.tolist()
        assert cols.tolist() == want_cols.tolist()
        # Bit-identical distances, not approximate ones.
        assert dists.tolist() == dense[want_rows, want_cols].tolist()

    def test_cell_size_much_smaller_than_radius(self):
        rng = np.random.default_rng(4)
        targets = _random_points(rng, 30)
        queries = _random_points(rng, 30)
        fine = SpatialGrid(targets, cell_size_m=35.0)
        coarse = SpatialGrid(targets, cell_size_m=700.0)
        for radius in (90.0, 400.0):
            got = fine.query_radius(queries, radius)
            want = coarse.query_radius(queries, radius)
            for a, b in zip(got, want):
                assert a.tolist() == b.tolist()

    def test_empty_point_set_and_empty_queries(self):
        grid = SpatialGrid([], cell_size_m=100.0)
        rows, cols, dists = grid.query_radius([Point(0, 0)], 50.0)
        assert len(rows) == len(cols) == len(dists) == 0
        grid2 = SpatialGrid([Point(1, 2)], cell_size_m=100.0)
        rows, cols, dists = grid2.query_radius([], 50.0)
        assert len(rows) == len(cols) == len(dists) == 0
        assert len(grid2) == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            SpatialGrid([Point(0, 0)], cell_size_m=0.0)
        grid = SpatialGrid([Point(0, 0)], cell_size_m=10.0)
        with pytest.raises(ConfigurationError):
            grid.query_radius([Point(0, 0)], radius_m=-1.0)


def _grid_clone(network: MECNetwork) -> MECNetwork:
    return MECNetwork(
        providers=network.providers,
        base_stations=network.base_stations,
        user_equipments=network.user_equipments,
        services=network.services,
        region=network.region,
        coverage_radius_m=network.coverage_radius_m,
        geometry="grid",
    )


class TestNetworkGeometryModes:
    @pytest.fixture(scope="class")
    def networks(self):
        scenario = build_scenario(
            ScenarioConfig.paper(), ue_count=90, seed=11
        )
        return scenario.network, _grid_clone(scenario.network)

    def test_auto_stays_dense_below_cell_limit(self, networks):
        dense, grid = networks
        assert dense._geometry_mode == "dense"
        assert grid._geometry_mode == "grid"

    def test_coverage_and_candidates_identical(self, networks):
        dense, grid = networks
        for ue in dense.user_equipments:
            assert grid.covering_base_stations(
                ue.ue_id
            ) == dense.covering_base_stations(ue.ue_id)
            assert grid.candidate_base_stations(
                ue.ue_id
            ) == dense.candidate_base_stations(ue.ue_id)

    def test_distances_identical_in_and_out_of_coverage(self, networks):
        dense, grid = networks
        ue = dense.user_equipments[0]
        for bs in dense.base_stations:
            assert grid.distance_m(ue.ue_id, bs.bs_id) == dense.distance_m(
                ue.ue_id, bs.bs_id
            )

    def test_candidate_pairs_identical(self, networks):
        dense, grid = networks
        d_rows, d_cols, d_dists = dense.candidate_pairs()
        g_rows, g_cols, g_dists = grid.candidate_pairs()
        assert g_rows.tolist() == d_rows.tolist()
        assert g_cols.tolist() == d_cols.tolist()
        assert g_dists.tolist() == d_dists.tolist()

    def test_distance_matrix_and_mask_shims_identical(self, networks):
        dense, grid = networks
        assert np.array_equal(
            grid.distance_matrix_m(), dense.distance_matrix_m()
        )
        assert np.array_equal(grid.candidate_mask(), dense.candidate_mask())

    def test_mean_coverage_degree_identical(self, networks):
        dense, grid = networks
        assert grid.mean_coverage_degree() == pytest.approx(
            dense.mean_coverage_degree()
        )

    def test_estimated_geometry_bytes_positive_and_mode_dependent(
        self, networks
    ):
        dense, grid = networks
        assert dense.estimated_geometry_bytes() > 0
        assert grid.estimated_geometry_bytes() > 0
        # Dense estimate covers the full UE x BS matrix plus the mask.
        cells = dense.ue_count * dense.bs_count
        assert dense.estimated_geometry_bytes() >= cells * 9

    def test_invalid_geometry_rejected(self, networks):
        dense, _ = networks
        with pytest.raises(ConfigurationError):
            MECNetwork(
                providers=dense.providers,
                base_stations=dense.base_stations,
                user_equipments=dense.user_equipments,
                services=dense.services,
                region=dense.region,
                coverage_radius_m=dense.coverage_radius_m,
                geometry="sparse",
            )
