"""Unit tests for the online (event-driven) simulation."""

import pytest

from repro.dynamics.arrivals import (
    BatchArrivals,
    DeterministicHolding,
    ExponentialHolding,
    PoissonArrivals,
)
from repro.dynamics.online import OnlineConfig, run_online
from repro.errors import ConfigurationError
from repro.sim.config import ScenarioConfig

CONFIG = ScenarioConfig.paper()


def light_load(horizon=200.0):
    return OnlineConfig(
        horizon_s=horizon,
        arrivals=PoissonArrivals(rate_per_s=0.5),
        holding=ExponentialHolding(mean_s=60.0),
    )


class TestOnlineBasics:
    def test_light_load_serves_everything(self):
        outcome = run_online(CONFIG, light_load(), seed=1)
        assert outcome.admitted_cloud == 0
        assert outcome.blocking_probability == 0.0
        assert outcome.admitted_edge == outcome.arrivals
        assert outcome.total_admitted_profit > 0

    def test_event_conservation(self):
        """Every arrival is matched by exactly one departure event."""
        outcome = run_online(CONFIG, light_load(), seed=2)
        assert outcome.events_processed == 2 * outcome.arrivals

    def test_seed_determinism(self):
        a = run_online(CONFIG, light_load(), seed=3)
        b = run_online(CONFIG, light_load(), seed=3)
        assert a.total_admitted_profit == b.total_admitted_profit
        assert a.edge_active.samples == b.edge_active.samples

    def test_different_seeds_differ(self):
        a = run_online(CONFIG, light_load(), seed=3)
        b = run_online(CONFIG, light_load(), seed=4)
        assert a.arrivals != b.arrivals or (
            a.total_admitted_profit != b.total_admitted_profit
        )

    def test_profit_by_sp_sums_to_total(self):
        outcome = run_online(CONFIG, light_load(), seed=5)
        assert sum(outcome.profit_by_sp.values()) == pytest.approx(
            outcome.total_admitted_profit
        )

    def test_series_well_formed(self):
        outcome = run_online(CONFIG, light_load(), seed=1)
        assert outcome.edge_active.samples[0] == (0.0, 0.0)
        assert 0.0 <= outcome.mean_rrb_utilization <= 1.0
        assert outcome.mean_edge_active >= 0.0


class TestOnlineLoadRegimes:
    def test_overload_produces_blocking(self):
        heavy = OnlineConfig(
            horizon_s=300.0,
            arrivals=PoissonArrivals(rate_per_s=10.0),
            holding=ExponentialHolding(mean_s=300.0),
        )
        outcome = run_online(CONFIG, heavy, seed=1)
        assert outcome.blocking_probability > 0.1
        assert outcome.rrb_utilization.peak > 0.8

    def test_blocking_increases_with_offered_load(self):
        def blocking(rate):
            online = OnlineConfig(
                horizon_s=300.0,
                arrivals=PoissonArrivals(rate_per_s=rate),
                holding=ExponentialHolding(mean_s=200.0),
            )
            return run_online(CONFIG, online, seed=7).blocking_probability

        assert blocking(12.0) > blocking(4.0)

    def test_resources_recycle_after_departures(self):
        """With short holding times, a long run at moderate rate never
        blocks: departures keep freeing capacity."""
        online = OnlineConfig(
            horizon_s=400.0,
            arrivals=PoissonArrivals(rate_per_s=3.0),
            holding=DeterministicHolding(duration_s=10.0),
        )
        outcome = run_online(CONFIG, online, seed=2)
        assert outcome.blocking_probability == 0.0
        # Occupancy stabilizes near rate * holding = 30, far below peak
        # capacity, rather than accumulating.
        assert outcome.edge_active.peak < 80

    def test_batch_arrivals_supported(self):
        online = OnlineConfig(
            horizon_s=100.0,
            arrivals=BatchArrivals(interval_s=20.0, batch_size=15),
            holding=DeterministicHolding(duration_s=30.0),
        )
        outcome = run_online(CONFIG, online, seed=1)
        assert outcome.arrivals == 4 * 15
        assert outcome.admitted_edge > 0


class TestOnlineValidation:
    def test_invalid_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            OnlineConfig(horizon_s=0.0)

    def test_final_ledger_state_consistent(self):
        """Active edge count at the end matches edge admissions minus
        departures (implicitly checked via event conservation and the
        series' last value being >= 0)."""
        outcome = run_online(CONFIG, light_load(), seed=9)
        assert outcome.edge_active.last_value >= 0
        assert outcome.cloud_active.last_value >= 0


class TestDepartureAccounting:
    """The departure path must surface ledger drift, not absorb it."""

    @staticmethod
    def _edge_state():
        from repro.compute.cru import LedgerPool
        from repro.sim.scenario import build_scenario

        scenario = build_scenario(CONFIG, 1, seed=1)
        ledgers = LedgerPool(scenario.network.base_stations)
        ue = scenario.network.user_equipment(0)
        bs_id = scenario.network.base_stations[0].bs_id
        ledgers.ledger(bs_id).grant(0, ue.service_id, ue.cru_demand, 3)
        return ledgers, bs_id

    def test_unknown_ue_departure_raises(self):
        from repro.compute.cru import LedgerPool
        from repro.dynamics.online import _process_departure
        from repro.errors import AllocationError

        with pytest.raises(AllocationError, match="neither"):
            _process_departure(7, LedgerPool([]), set(), set(), {}, {})

    def test_edge_departure_without_rrb_record_raises(self):
        # Regression: this used to be silently absorbed via
        # rrbs_of_ue.pop(ue_id, 0), masking the drift.
        from repro.dynamics.online import _process_departure
        from repro.errors import AllocationError

        ledgers, bs_id = self._edge_state()
        with pytest.raises(AllocationError, match="no recorded RRB"):
            _process_departure(0, ledgers, {0}, set(), {0: bs_id}, {})

    def test_edge_departure_returns_freed_rrbs(self):
        from repro.dynamics.online import _process_departure

        ledgers, bs_id = self._edge_state()
        active_edge, serving = {0}, {0: bs_id}
        freed = _process_departure(
            0, ledgers, active_edge, set(), serving, {0: 3}
        )
        assert freed == 3
        assert not active_edge and not serving

    def test_cloud_departure_frees_nothing(self):
        from repro.compute.cru import LedgerPool
        from repro.dynamics.online import _process_departure

        active_cloud = {4}
        assert _process_departure(
            4, LedgerPool([]), set(), active_cloud, {}, {}
        ) == 0
        assert not active_cloud

    def test_ledger_conservation_check(self):
        from repro.dynamics.online import _check_ledger_conservation
        from repro.errors import AllocationError

        ledgers, _ = self._edge_state()
        total = sum(
            bs_ledger.remaining_rrbs for bs_ledger in ledgers
        ) + 3  # 3 RRBs are granted out
        _check_ledger_conservation(ledgers, total, used_rrbs=3)
        with pytest.raises(AllocationError, match="conservation"):
            _check_ledger_conservation(ledgers, total, used_rrbs=0)


class TestLedgerMonitor:
    """The O(1) tripwire plus the cadenced / debug-gated full scan."""

    @staticmethod
    def _pool():
        from repro.compute.cru import LedgerPool
        from repro.sim.scenario import build_scenario

        scenario = build_scenario(CONFIG, 1, seed=1)
        ledgers = LedgerPool(scenario.network.base_stations)
        total = sum(
            bs.rrb_capacity for bs in scenario.network.base_stations
        )
        return scenario, ledgers, total

    def test_o1_drift_detected(self):
        from repro.dynamics.online import LedgerMonitor
        from repro.errors import AllocationError

        _, ledgers, total = self._pool()
        monitor = LedgerMonitor(ledgers, total)
        monitor.on_grant(5)
        monitor.check(5)  # consistent
        with pytest.raises(AllocationError, match="conservation"):
            monitor.check(3)

    def test_full_scan_catches_untracked_grant(self):
        """Drift invisible to the O(1) counter — a grant made behind the
        monitor's back — is still caught by the full ledger scan."""
        from repro.dynamics.online import LedgerMonitor
        from repro.errors import AllocationError

        scenario, ledgers, total = self._pool()
        monitor = LedgerMonitor(ledgers, total)
        ue = scenario.network.user_equipment(0)
        bs_id = scenario.network.base_stations[0].bs_id
        ledgers.ledger(bs_id).grant(0, ue.service_id, ue.cru_demand, 3)
        # No on_grant call: in_flight == used_rrbs == 0, so the O(1)
        # comparison passes, but forcing the scan raises.
        with pytest.raises(AllocationError, match="conservation"):
            monitor.check(0, force=True)

    def test_debug_env_forces_scan_every_check(self, monkeypatch):
        from repro.dynamics.online import LedgerMonitor
        from repro.errors import AllocationError

        scenario, ledgers, total = self._pool()
        monitor = LedgerMonitor(ledgers, total, cadence=10_000)
        ue = scenario.network.user_equipment(0)
        bs_id = scenario.network.base_stations[0].bs_id
        ledgers.ledger(bs_id).grant(0, ue.service_id, ue.cru_demand, 3)
        monitor.check(0)  # cadence not reached: silent without debug
        monkeypatch.setenv("DMRA_DEBUG_LEDGER", "1")
        with pytest.raises(AllocationError, match="conservation"):
            monitor.check(0)

    def test_cadence_triggers_scan(self):
        from repro.dynamics.online import LedgerMonitor
        from repro.errors import AllocationError

        scenario, ledgers, total = self._pool()
        monitor = LedgerMonitor(ledgers, total, cadence=3)
        ue = scenario.network.user_equipment(0)
        bs_id = scenario.network.base_stations[0].bs_id
        ledgers.ledger(bs_id).grant(0, ue.service_id, ue.cru_demand, 3)
        monitor.check(0)
        monitor.check(0)
        with pytest.raises(AllocationError, match="conservation"):
            monitor.check(0)  # third check hits the cadence

    def test_seeds_from_existing_grants(self):
        from repro.dynamics.online import LedgerMonitor

        scenario, ledgers, total = self._pool()
        ue = scenario.network.user_equipment(0)
        bs_id = scenario.network.base_stations[0].bs_id
        ledgers.ledger(bs_id).grant(0, ue.service_id, ue.cru_demand, 3)
        monitor = LedgerMonitor(ledgers, total)
        monitor.check(3, force=True)  # in-flight seeded from the pool

    def test_invalid_cadence_rejected(self):
        from repro.dynamics.online import LedgerMonitor

        _, ledgers, total = self._pool()
        with pytest.raises(ConfigurationError, match="cadence"):
            LedgerMonitor(ledgers, total, cadence=0)


class TestOnlineKernels:
    def test_kernel_parity(self):
        obj = run_online(CONFIG, light_load(), seed=6, kernel="object")
        soa = run_online(CONFIG, light_load(), seed=6, kernel="soa")
        assert obj.admitted_edge == soa.admitted_edge
        assert obj.admitted_cloud == soa.admitted_cloud
        assert obj.total_admitted_profit == soa.total_admitted_profit
        assert obj.profit_by_sp == soa.profit_by_sp

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            run_online(CONFIG, light_load(), seed=1, kernel="simd")


MICRO = ScenarioConfig(
    sp_count=1,
    bs_per_sp=1,
    service_count=1,
    region_side_m=200.0,
    cru_capacity_min=20,
    cru_capacity_max=20,
    cru_demand_min=5,
    cru_demand_max=5,
    rate_demand_min_bps=1e5,
    rate_demand_max_bps=1e5,
)


class TestBlockingAgainstErlangB:
    """One BS, fixed demands -> the edge is a hand-computable M/M/c/c.

    CRU capacity 20 at 5 CRUs per task gives c = 4 concurrent slots
    (radio is slack: each task needs 1 of ~55 RRBs), so blocking is
    Erlang's B(4, a) at offered load a = rate * mean holding.
    """

    def test_slots_saturate_deterministically(self):
        online = OnlineConfig(
            horizon_s=40.0,
            arrivals=PoissonArrivals(rate_per_s=0.5),
            holding=DeterministicHolding(duration_s=1000.0),
        )
        outcome = run_online(MICRO, online, seed=1)
        assert outcome.arrivals >= 4
        # Nobody departs within the horizon, so exactly the first c = 4
        # tasks fit and every later arrival is blocked.
        assert outcome.admitted_edge == 4
        assert outcome.admitted_cloud == outcome.arrivals - 4
        assert outcome.blocking_probability == pytest.approx(
            (outcome.arrivals - 4) / outcome.arrivals
        )

    def test_blocking_matches_erlang_b(self):
        from repro.dynamics.erlang import erlang_b_blocking

        online = OnlineConfig(
            horizon_s=4000.0,
            arrivals=PoissonArrivals(rate_per_s=0.5),
            holding=ExponentialHolding(mean_s=4.0),
        )
        outcome = run_online(MICRO, online, seed=2)
        expected = erlang_b_blocking(servers=4, offered_erlangs=2.0)
        assert expected == pytest.approx(0.0952, abs=1e-3)
        assert outcome.arrivals > 1000
        assert outcome.blocking_probability == pytest.approx(
            expected, abs=0.04
        )
