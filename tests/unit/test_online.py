"""Unit tests for the online (event-driven) simulation."""

import pytest

from repro.dynamics.arrivals import (
    BatchArrivals,
    DeterministicHolding,
    ExponentialHolding,
    PoissonArrivals,
)
from repro.dynamics.online import OnlineConfig, run_online
from repro.errors import ConfigurationError
from repro.sim.config import ScenarioConfig

CONFIG = ScenarioConfig.paper()


def light_load(horizon=200.0):
    return OnlineConfig(
        horizon_s=horizon,
        arrivals=PoissonArrivals(rate_per_s=0.5),
        holding=ExponentialHolding(mean_s=60.0),
    )


class TestOnlineBasics:
    def test_light_load_serves_everything(self):
        outcome = run_online(CONFIG, light_load(), seed=1)
        assert outcome.admitted_cloud == 0
        assert outcome.blocking_probability == 0.0
        assert outcome.admitted_edge == outcome.arrivals
        assert outcome.total_admitted_profit > 0

    def test_event_conservation(self):
        """Every arrival is matched by exactly one departure event."""
        outcome = run_online(CONFIG, light_load(), seed=2)
        assert outcome.events_processed == 2 * outcome.arrivals

    def test_seed_determinism(self):
        a = run_online(CONFIG, light_load(), seed=3)
        b = run_online(CONFIG, light_load(), seed=3)
        assert a.total_admitted_profit == b.total_admitted_profit
        assert a.edge_active.samples == b.edge_active.samples

    def test_different_seeds_differ(self):
        a = run_online(CONFIG, light_load(), seed=3)
        b = run_online(CONFIG, light_load(), seed=4)
        assert a.arrivals != b.arrivals or (
            a.total_admitted_profit != b.total_admitted_profit
        )

    def test_profit_by_sp_sums_to_total(self):
        outcome = run_online(CONFIG, light_load(), seed=5)
        assert sum(outcome.profit_by_sp.values()) == pytest.approx(
            outcome.total_admitted_profit
        )

    def test_series_well_formed(self):
        outcome = run_online(CONFIG, light_load(), seed=1)
        assert outcome.edge_active.samples[0] == (0.0, 0.0)
        assert 0.0 <= outcome.mean_rrb_utilization <= 1.0
        assert outcome.mean_edge_active >= 0.0


class TestOnlineLoadRegimes:
    def test_overload_produces_blocking(self):
        heavy = OnlineConfig(
            horizon_s=300.0,
            arrivals=PoissonArrivals(rate_per_s=10.0),
            holding=ExponentialHolding(mean_s=300.0),
        )
        outcome = run_online(CONFIG, heavy, seed=1)
        assert outcome.blocking_probability > 0.1
        assert outcome.rrb_utilization.peak > 0.8

    def test_blocking_increases_with_offered_load(self):
        def blocking(rate):
            online = OnlineConfig(
                horizon_s=300.0,
                arrivals=PoissonArrivals(rate_per_s=rate),
                holding=ExponentialHolding(mean_s=200.0),
            )
            return run_online(CONFIG, online, seed=7).blocking_probability

        assert blocking(12.0) > blocking(4.0)

    def test_resources_recycle_after_departures(self):
        """With short holding times, a long run at moderate rate never
        blocks: departures keep freeing capacity."""
        online = OnlineConfig(
            horizon_s=400.0,
            arrivals=PoissonArrivals(rate_per_s=3.0),
            holding=DeterministicHolding(duration_s=10.0),
        )
        outcome = run_online(CONFIG, online, seed=2)
        assert outcome.blocking_probability == 0.0
        # Occupancy stabilizes near rate * holding = 30, far below peak
        # capacity, rather than accumulating.
        assert outcome.edge_active.peak < 80

    def test_batch_arrivals_supported(self):
        online = OnlineConfig(
            horizon_s=100.0,
            arrivals=BatchArrivals(interval_s=20.0, batch_size=15),
            holding=DeterministicHolding(duration_s=30.0),
        )
        outcome = run_online(CONFIG, online, seed=1)
        assert outcome.arrivals == 4 * 15
        assert outcome.admitted_edge > 0


class TestOnlineValidation:
    def test_invalid_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            OnlineConfig(horizon_s=0.0)

    def test_final_ledger_state_consistent(self):
        """Active edge count at the end matches edge admissions minus
        departures (implicitly checked via event conservation and the
        series' last value being >= 0)."""
        outcome = run_online(CONFIG, light_load(), seed=9)
        assert outcome.edge_active.last_value >= 0
        assert outcome.cloud_active.last_value >= 0
