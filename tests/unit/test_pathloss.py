"""Unit tests for path-loss models."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.radio.pathloss import (
    FreeSpacePathLoss,
    PaperPathLoss,
    ShadowedPathLoss,
)


class TestPaperPathLoss:
    def test_eq18_at_known_distances(self):
        model = PaperPathLoss()
        # 1 km: 140.7 + 36.7 * log10(1) = 140.7 dB.
        assert model.loss_db(1000.0) == pytest.approx(140.7)
        # 100 m: 140.7 + 36.7 * log10(0.1) = 104.0 dB.
        assert model.loss_db(100.0) == pytest.approx(140.7 - 36.7)
        # 300 m (the paper's inter-site distance).
        assert model.loss_db(300.0) == pytest.approx(
            140.7 + 36.7 * math.log10(0.3)
        )

    def test_monotone_increasing(self):
        model = PaperPathLoss()
        distances = [1.0, 10.0, 50.0, 100.0, 300.0, 500.0, 1200.0]
        losses = [model.loss_db(d) for d in distances]
        assert losses == sorted(losses)
        assert len(set(losses)) == len(losses)

    def test_slope_is_36_7_db_per_decade(self):
        model = PaperPathLoss()
        assert model.loss_db(1000.0) - model.loss_db(100.0) == pytest.approx(36.7)

    def test_min_distance_floor(self):
        model = PaperPathLoss(min_distance_m=1.0)
        assert model.loss_db(0.0) == model.loss_db(1.0)
        assert model.loss_db(0.5) == model.loss_db(1.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            PaperPathLoss().loss_db(-1.0)

    def test_invalid_min_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            PaperPathLoss(min_distance_m=0.0)

    def test_custom_coefficients(self):
        model = PaperPathLoss(fixed_db=100.0, slope_db_per_decade=20.0)
        assert model.loss_db(1000.0) == pytest.approx(100.0)
        assert model.loss_db(10_000.0) == pytest.approx(120.0)


class TestFreeSpacePathLoss:
    def test_fspl_at_known_point(self):
        # FSPL at 1 km, 2.4 GHz is ~100.05 dB.
        model = FreeSpacePathLoss(carrier_frequency_hz=2.4e9)
        assert model.loss_db(1000.0) == pytest.approx(100.05, abs=0.1)

    def test_20db_per_decade(self):
        model = FreeSpacePathLoss()
        assert model.loss_db(1000.0) - model.loss_db(100.0) == pytest.approx(20.0)

    def test_frequency_dependence(self):
        low = FreeSpacePathLoss(carrier_frequency_hz=1e9)
        high = FreeSpacePathLoss(carrier_frequency_hz=2e9)
        assert high.loss_db(100.0) - low.loss_db(100.0) == pytest.approx(
            20.0 * math.log10(2.0)
        )

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            FreeSpacePathLoss(carrier_frequency_hz=0.0)
        with pytest.raises(ConfigurationError):
            FreeSpacePathLoss(min_distance_m=-1.0)
        with pytest.raises(ConfigurationError):
            FreeSpacePathLoss().loss_db(-5.0)


class TestShadowedPathLoss:
    def test_shadowing_is_frozen_per_distance(self):
        model = ShadowedPathLoss(PaperPathLoss(), sigma_db=8.0)
        assert model.loss_db(250.0) == model.loss_db(250.0)

    def test_shadowing_reproducible_from_rng_seed(self):
        a = ShadowedPathLoss(
            PaperPathLoss(), sigma_db=8.0, rng=np.random.default_rng(5)
        )
        b = ShadowedPathLoss(
            PaperPathLoss(), sigma_db=8.0, rng=np.random.default_rng(5)
        )
        assert a.loss_db(250.0) == b.loss_db(250.0)

    def test_zero_sigma_equals_base(self):
        base = PaperPathLoss()
        model = ShadowedPathLoss(base, sigma_db=0.0)
        for d in (10.0, 100.0, 500.0):
            assert model.loss_db(d) == pytest.approx(base.loss_db(d))

    def test_shadowing_spread_matches_sigma(self):
        model = ShadowedPathLoss(
            PaperPathLoss(), sigma_db=8.0, rng=np.random.default_rng(0)
        )
        base = PaperPathLoss()
        deviations = [
            model.loss_db(float(d)) - base.loss_db(float(d))
            for d in range(50, 1050)
        ]
        assert abs(float(np.mean(deviations))) < 1.0
        assert float(np.std(deviations)) == pytest.approx(8.0, rel=0.15)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            ShadowedPathLoss(PaperPathLoss(), sigma_db=-1.0)
