"""Unit tests for OFDMA RRB arithmetic (Eqs. 2--4)."""

import math

import pytest

from repro.errors import ConfigurationError, InfeasibleLinkError
from repro.radio.ofdma import per_rrb_rate_bps, rrb_budget, rrbs_required


class TestPerRRBRate:
    def test_shannon_formula(self):
        # e = W_sub * log2(1 + SINR); at SINR = 3 that is 2 * W_sub.
        assert per_rrb_rate_bps(180e3, 3.0) == pytest.approx(360e3)

    def test_zero_sinr_gives_zero_rate(self):
        assert per_rrb_rate_bps(180e3, 0.0) == 0.0

    def test_rate_increases_with_sinr(self):
        rates = [per_rrb_rate_bps(180e3, s) for s in (0.5, 1, 10, 100, 1e5)]
        assert rates == sorted(rates)

    def test_rate_scales_with_bandwidth(self):
        assert per_rrb_rate_bps(360e3, 3.0) == pytest.approx(
            2 * per_rrb_rate_bps(180e3, 3.0)
        )

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            per_rrb_rate_bps(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            per_rrb_rate_bps(180e3, -0.5)


class TestRRBsRequired:
    def test_exact_division(self):
        assert rrbs_required(2e6, 1e6) == 2

    def test_ceiling_behaviour(self):
        assert rrbs_required(2.1e6, 1e6) == 3
        assert rrbs_required(0.1e6, 1e6) == 1

    def test_matches_paper_eq3(self):
        w_u, e_ui = 5.5e6, 1.3e6
        assert rrbs_required(w_u, e_ui) == math.ceil(w_u / e_ui)

    def test_zero_rate_link_is_infeasible(self):
        with pytest.raises(InfeasibleLinkError):
            rrbs_required(2e6, 0.0)

    def test_invalid_demand(self):
        with pytest.raises(ConfigurationError):
            rrbs_required(0.0, 1e6)

    def test_demand_monotonicity(self):
        counts = [rrbs_required(w, 1e6) for w in (1e6, 2e6, 3.5e6, 9e6)]
        assert counts == sorted(counts)


class TestRRBBudget:
    def test_paper_budget_is_55(self):
        assert rrb_budget(10e6, 180e3) == 55

    def test_floor_division(self):
        assert rrb_budget(1e6, 300e3) == 3

    def test_sub_rrb_band_rejected(self):
        with pytest.raises(ConfigurationError):
            rrb_budget(100e3, 180e3)

    def test_invalid_bandwidths(self):
        with pytest.raises(ConfigurationError):
            rrb_budget(0.0, 180e3)
        with pytest.raises(ConfigurationError):
            rrb_budget(10e6, 0.0)
