"""Unit tests for OFDMA RRB arithmetic (Eqs. 2--4)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, InfeasibleLinkError
from repro.radio.ofdma import (
    per_rrb_rate_bps,
    per_rrb_rate_bps_array,
    rrb_budget,
    rrbs_required,
    rrbs_required_array,
)


class TestPerRRBRate:
    def test_shannon_formula(self):
        # e = W_sub * log2(1 + SINR); at SINR = 3 that is 2 * W_sub.
        assert per_rrb_rate_bps(180e3, 3.0) == pytest.approx(360e3)

    def test_zero_sinr_gives_zero_rate(self):
        assert per_rrb_rate_bps(180e3, 0.0) == 0.0

    def test_rate_increases_with_sinr(self):
        rates = [per_rrb_rate_bps(180e3, s) for s in (0.5, 1, 10, 100, 1e5)]
        assert rates == sorted(rates)

    def test_rate_scales_with_bandwidth(self):
        assert per_rrb_rate_bps(360e3, 3.0) == pytest.approx(
            2 * per_rrb_rate_bps(180e3, 3.0)
        )

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            per_rrb_rate_bps(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            per_rrb_rate_bps(180e3, -0.5)


class TestRRBsRequired:
    def test_exact_division(self):
        assert rrbs_required(2e6, 1e6) == 2

    def test_ceiling_behaviour(self):
        assert rrbs_required(2.1e6, 1e6) == 3
        assert rrbs_required(0.1e6, 1e6) == 1

    def test_matches_paper_eq3(self):
        w_u, e_ui = 5.5e6, 1.3e6
        assert rrbs_required(w_u, e_ui) == math.ceil(w_u / e_ui)

    def test_zero_rate_link_is_infeasible(self):
        with pytest.raises(InfeasibleLinkError):
            rrbs_required(2e6, 0.0)

    def test_invalid_demand(self):
        with pytest.raises(ConfigurationError):
            rrbs_required(0.0, 1e6)

    def test_demand_monotonicity(self):
        counts = [rrbs_required(w, 1e6) for w in (1e6, 2e6, 3.5e6, 9e6)]
        assert counts == sorted(counts)


class TestRRBBudget:
    def test_paper_budget_is_55(self):
        assert rrb_budget(10e6, 180e3) == 55

    def test_floor_division(self):
        assert rrb_budget(1e6, 300e3) == 3

    def test_sub_rrb_band_rejected(self):
        with pytest.raises(ConfigurationError):
            rrb_budget(100e3, 180e3)

    def test_invalid_bandwidths(self):
        with pytest.raises(ConfigurationError):
            rrb_budget(0.0, 180e3)
        with pytest.raises(ConfigurationError):
            rrb_budget(10e6, 0.0)


class TestRRBsRequiredEdgeCases:
    def test_exact_multiple_has_no_spurious_extra_rrb(self):
        # Demand landing exactly on k * per-RRB rate must need exactly k.
        for k in (1, 2, 3, 7, 55):
            assert rrbs_required(k * 1.5e6, 1.5e6) == k

    def test_just_above_exact_multiple_rounds_up(self):
        rate = 1.5e6
        demand = math.nextafter(3 * rate, math.inf)
        assert rrbs_required(demand, rate) == 4

    def test_tiny_demand_needs_one_rrb(self):
        assert rrbs_required(1.0, 5e6) == 1


class TestArrayTwins:
    def test_rate_array_matches_scalar(self):
        sinrs = np.array([0.0, 0.5, 3.0, 120.0, 1e5])
        batched = per_rrb_rate_bps_array(180e3, sinrs)
        for got, sinr in zip(batched, sinrs):
            assert got == per_rrb_rate_bps(180e3, float(sinr))

    def test_rate_array_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            per_rrb_rate_bps_array(0.0, np.array([1.0]))
        with pytest.raises(ConfigurationError):
            per_rrb_rate_bps_array(180e3, np.array([1.0, -0.5]))

    def test_rrbs_array_matches_scalar(self):
        demand = np.array([2e6, 2.1e6, 4.5e6, 3e6])
        rate = np.array([1e6, 1e6, 1.5e6, 1.5e6])
        batched = rrbs_required_array(demand, rate, 56)
        assert batched.dtype == np.int64
        for got, w, e in zip(batched, demand, rate):
            assert got == rrbs_required(float(w), float(e))

    def test_rrbs_array_exact_multiples_stay_exact(self):
        rate = np.full(5, 1.5e6)
        demand = np.arange(1, 6) * 1.5e6
        assert rrbs_required_array(demand, rate, 56).tolist() == [1, 2, 3, 4, 5]

    def test_rrbs_array_pins_zero_rate_to_infeasible_value(self):
        demand = np.array([2e6, 2e6, 2e6])
        rate = np.array([1e6, 0.0, 0.0])
        infeasible = np.array([99, 11, 56])
        assert rrbs_required_array(demand, rate, infeasible).tolist() == [
            2, 11, 56,
        ]

    def test_rrbs_array_rejects_nonpositive_demand(self):
        with pytest.raises(ConfigurationError):
            rrbs_required_array(np.array([0.0]), np.array([1e6]), 56)
