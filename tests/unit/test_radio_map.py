"""Unit tests for the precomputed radio map."""

import math

import pytest

from conftest import make_tiny_network
from repro.errors import UnknownEntityError
from repro.model.geometry import Point
from repro.radio.channel import build_radio_map
from repro.radio.ofdma import per_rrb_rate_bps, rrbs_required
from repro.radio.sinr import LinkBudget


class TestBuildRadioMap:
    def test_contains_exactly_candidate_links(self, tiny_network):
        radio_map = build_radio_map(tiny_network, LinkBudget())
        assert len(radio_map) == 2  # UE 0 reaches both BSs
        assert radio_map.has_link(0, 0)
        assert radio_map.has_link(0, 1)

    def test_non_candidate_pairs_absent(self):
        network = make_tiny_network(coverage_radius_m=150.0)
        radio_map = build_radio_map(network, LinkBudget())
        assert radio_map.has_link(0, 0)
        assert not radio_map.has_link(0, 1)  # 300 m > 150 m radius
        with pytest.raises(UnknownEntityError):
            radio_map.link(0, 1)

    def test_metrics_match_manual_chain(self, tiny_network):
        budget = LinkBudget()
        radio_map = build_radio_map(tiny_network, budget)
        ue = tiny_network.user_equipment(0)
        link = radio_map.link(0, 0)
        distance = tiny_network.distance_m(0, 0)
        sinr = budget.sinr(distance, ue.tx_power_dbm)
        rate = per_rrb_rate_bps(budget.rrb_bandwidth_hz, sinr)
        assert link.distance_m == pytest.approx(distance)
        assert link.sinr_linear == pytest.approx(sinr)
        assert link.per_rrb_rate_bps == pytest.approx(rate)
        assert link.rrbs_required == rrbs_required(ue.rate_demand_bps, rate)

    def test_nearer_bs_needs_no_more_rrbs(self, tiny_network):
        radio_map = build_radio_map(tiny_network, LinkBudget())
        near = radio_map.link(0, 0)  # 100 m
        far = radio_map.link(0, 1)  # 300 m
        assert near.rrbs_required <= far.rrbs_required
        assert near.sinr_linear > far.sinr_linear

    def test_links_of_ue(self, tiny_network):
        radio_map = build_radio_map(tiny_network, LinkBudget())
        links = radio_map.links_of_ue(0)
        assert {link.bs_id for link in links} == {0, 1}
        assert all(link.ue_id == 0 for link in links)

    def test_iteration_yields_all_links(self, tiny_network):
        radio_map = build_radio_map(tiny_network, LinkBudget())
        assert len(list(radio_map)) == len(radio_map)

    def test_feasible_flag(self, tiny_network):
        radio_map = build_radio_map(tiny_network, LinkBudget())
        assert all(link.feasible for link in radio_map)

    def test_paper_regime_needs_few_rrbs(self, small_scenario):
        """With the paper's parameters every link needs only a handful of
        RRBs (high-SNR regime; see DESIGN.md §3)."""
        demands = [link.rrbs_required for link in small_scenario.radio_map]
        assert max(demands) <= 4
        assert min(demands) >= 1

    def test_dead_link_marked_over_budget(self):
        """A UE far outside practical range gets a demand exceeding N_i."""
        network = make_tiny_network(
            ue_specs=[
                dict(
                    ue_id=0,
                    position=Point(0.0, 550.0),
                    rate_demand_bps=6e6,
                    tx_power_dbm=-100.0,  # absurdly weak transmitter
                )
            ],
            coverage_radius_m=600.0,
        )
        radio_map = build_radio_map(network, LinkBudget())
        link = radio_map.link(0, 0)
        bs = network.base_station(0)
        # Either the rate is truly zero (capped demand) or enormous demand.
        assert (
            link.rrbs_required > bs.rrb_capacity
            or link.per_rrb_rate_bps > 0
        )
        assert math.isfinite(link.per_rrb_rate_bps)
