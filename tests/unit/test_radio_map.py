"""Unit tests for the precomputed radio map."""

import math

import pytest

from conftest import make_tiny_network
from repro.errors import UnknownEntityError
from repro.model.geometry import Point
from repro.radio.channel import build_radio_map, build_radio_map_reference
from repro.radio.ofdma import per_rrb_rate_bps, rrbs_required
from repro.radio.sinr import LinkBudget


class TestBuildRadioMap:
    def test_contains_exactly_candidate_links(self, tiny_network):
        radio_map = build_radio_map(tiny_network, LinkBudget())
        assert len(radio_map) == 2  # UE 0 reaches both BSs
        assert radio_map.has_link(0, 0)
        assert radio_map.has_link(0, 1)

    def test_non_candidate_pairs_absent(self):
        network = make_tiny_network(coverage_radius_m=150.0)
        radio_map = build_radio_map(network, LinkBudget())
        assert radio_map.has_link(0, 0)
        assert not radio_map.has_link(0, 1)  # 300 m > 150 m radius
        with pytest.raises(UnknownEntityError):
            radio_map.link(0, 1)

    def test_metrics_match_manual_chain(self, tiny_network):
        budget = LinkBudget()
        radio_map = build_radio_map(tiny_network, budget)
        ue = tiny_network.user_equipment(0)
        link = radio_map.link(0, 0)
        distance = tiny_network.distance_m(0, 0)
        sinr = budget.sinr(distance, ue.tx_power_dbm)
        rate = per_rrb_rate_bps(budget.rrb_bandwidth_hz, sinr)
        assert link.distance_m == pytest.approx(distance)
        assert link.sinr_linear == pytest.approx(sinr)
        assert link.per_rrb_rate_bps == pytest.approx(rate)
        assert link.rrbs_required == rrbs_required(ue.rate_demand_bps, rate)

    def test_nearer_bs_needs_no_more_rrbs(self, tiny_network):
        radio_map = build_radio_map(tiny_network, LinkBudget())
        near = radio_map.link(0, 0)  # 100 m
        far = radio_map.link(0, 1)  # 300 m
        assert near.rrbs_required <= far.rrbs_required
        assert near.sinr_linear > far.sinr_linear

    def test_links_of_ue(self, tiny_network):
        radio_map = build_radio_map(tiny_network, LinkBudget())
        links = radio_map.links_of_ue(0)
        assert {link.bs_id for link in links} == {0, 1}
        assert all(link.ue_id == 0 for link in links)

    def test_iteration_yields_all_links(self, tiny_network):
        radio_map = build_radio_map(tiny_network, LinkBudget())
        assert len(list(radio_map)) == len(radio_map)

    def test_feasible_flag(self, tiny_network):
        radio_map = build_radio_map(tiny_network, LinkBudget())
        assert all(link.feasible for link in radio_map)

    def test_paper_regime_needs_few_rrbs(self, small_scenario):
        """With the paper's parameters every link needs only a handful of
        RRBs (high-SNR regime; see DESIGN.md §3)."""
        demands = [link.rrbs_required for link in small_scenario.radio_map]
        assert max(demands) <= 4
        assert min(demands) >= 1

    def test_dead_link_marked_over_budget(self):
        """A UE far outside practical range gets a demand exceeding N_i."""
        network = make_tiny_network(
            ue_specs=[
                dict(
                    ue_id=0,
                    position=Point(0.0, 550.0),
                    rate_demand_bps=6e6,
                    tx_power_dbm=-100.0,  # absurdly weak transmitter
                )
            ],
            coverage_radius_m=600.0,
        )
        radio_map = build_radio_map(network, LinkBudget())
        link = radio_map.link(0, 0)
        bs = network.base_station(0)
        # Either the rate is truly zero (capped demand) or enormous demand.
        assert (
            link.rrbs_required > bs.rrb_capacity
            or link.per_rrb_rate_bps > 0
        )
        assert math.isfinite(link.per_rrb_rate_bps)


class TestColumnarLayout:
    def test_columns_align_with_links(self, tiny_network):
        radio_map = build_radio_map(tiny_network, LinkBudget())
        for index in range(len(radio_map)):
            link = radio_map.link(
                int(radio_map.ue_ids[index]), int(radio_map.bs_ids[index])
            )
            assert link.distance_m == radio_map.distances_m[index]
            assert link.sinr_linear == radio_map.sinrs_linear[index]
            assert link.per_rrb_rate_bps == radio_map.per_rrb_rates_bps[index]
            assert link.rrbs_required == radio_map.rrb_demands[index]

    def test_columns_are_read_only(self, tiny_network):
        radio_map = build_radio_map(tiny_network, LinkBudget())
        with pytest.raises(ValueError):
            radio_map.rrb_demands[0] = 99

    def test_links_grouped_by_ue(self):
        network = make_tiny_network(
            ue_specs=[dict(ue_id=7), dict(ue_id=3), dict(ue_id=5)]
        )
        radio_map = build_radio_map(network, LinkBudget())
        ue_column = radio_map.ue_ids.tolist()
        # All of one UE's links are contiguous, in network UE order.
        assert ue_column == sorted(
            ue_column, key=lambda uid: [7, 3, 5].index(uid)
        )

    def test_link_metrics_are_cached_views(self, tiny_network):
        radio_map = build_radio_map(tiny_network, LinkBudget())
        assert radio_map.link(0, 0) is radio_map.link(0, 0)

    def test_links_of_ue_uses_per_ue_index(self):
        network = make_tiny_network(
            ue_specs=[dict(ue_id=0), dict(ue_id=1), dict(ue_id=2)]
        )
        radio_map = build_radio_map(network, LinkBudget())
        for uid in (0, 1, 2):
            links = radio_map.links_of_ue(uid)
            assert {link.bs_id for link in links} == {0, 1}
            assert all(link.ue_id == uid for link in links)
        assert radio_map.links_of_ue(999) == ()


class TestZeroRatePinning:
    def test_zero_rate_pinned_to_capacity_plus_one(self):
        network = make_tiny_network()

        def dead_rate(bandwidth_hz, sinr):
            """A rate model that declares every link out of range."""
            return 0.0

        radio_map = build_radio_map(
            network, LinkBudget(), rate_model=dead_rate
        )
        for link in radio_map:
            capacity = network.base_station(link.bs_id).rrb_capacity
            assert link.rrbs_required == capacity + 1
            assert not link.feasible

    def test_reference_builder_pins_identically(self):
        network = make_tiny_network()

        def dead_rate(bandwidth_hz, sinr):
            """A rate model that declares every link out of range."""
            return 0.0

        vec = build_radio_map(network, LinkBudget(), rate_model=dead_rate)
        ref = build_radio_map_reference(
            network, LinkBudget(), rate_model=dead_rate
        )
        assert [m.rrbs_required for m in vec] == [
            m.rrbs_required for m in ref
        ]


class TestReferenceParity:
    def _assert_maps_agree(self, vec, ref):
        assert len(vec) == len(ref)
        ref_by_pair = {(m.ue_id, m.bs_id): m for m in ref}
        for link in vec:
            other = ref_by_pair[(link.ue_id, link.bs_id)]
            assert link.rrbs_required == other.rrbs_required
            assert link.distance_m == pytest.approx(
                other.distance_m, rel=1e-9
            )
            assert link.sinr_linear == pytest.approx(
                other.sinr_linear, rel=1e-9
            )
            assert link.per_rrb_rate_bps == pytest.approx(
                other.per_rrb_rate_bps, rel=1e-9
            )

    def test_vectorized_matches_reference_on_seeded_scenario(
        self, small_scenario
    ):
        config = small_scenario.config
        budget = config.link_budget()
        vec = build_radio_map(
            small_scenario.network, budget, rate_model=config.rate_model_fn()
        )
        ref = build_radio_map_reference(
            small_scenario.network, budget, rate_model=config.rate_model_fn()
        )
        self._assert_maps_agree(vec, ref)

    def test_unregistered_rate_model_falls_back_elementwise(
        self, tiny_network
    ):
        def halved_shannon(bandwidth_hz, sinr):
            """A custom model with no registered array twin."""
            return 0.5 * per_rrb_rate_bps(bandwidth_hz, sinr)

        vec = build_radio_map(
            tiny_network, LinkBudget(), rate_model=halved_shannon
        )
        ref = build_radio_map_reference(
            tiny_network, LinkBudget(), rate_model=halved_shannon
        )
        self._assert_maps_agree(vec, ref)


class TestIncrementalUpdate:
    def test_partial_update_matches_fresh_build(self):
        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=0, position=Point(100.0, 0.0)),
                dict(ue_id=1, position=Point(250.0, 0.0)),
                dict(ue_id=2, position=Point(380.0, 0.0)),
            ]
        )
        budget = LinkBudget()
        radio_map = build_radio_map(network, budget)
        moved_network = network.with_moved_ues({1: Point(50.0, 20.0)})
        patched = radio_map.with_updated_ues(moved_network, budget, [1])
        fresh = build_radio_map(moved_network, budget)
        assert len(patched) == len(fresh)
        for link in fresh:
            got = patched.link(link.ue_id, link.bs_id)
            assert got == link

    def test_unmoved_metrics_objects_are_reused(self):
        network = make_tiny_network(
            ue_specs=[dict(ue_id=0), dict(ue_id=1, position=Point(300.0, 0.0))]
        )
        budget = LinkBudget()
        radio_map = build_radio_map(network, budget)
        before = radio_map.link(0, 0)
        moved = network.with_moved_ues({1: Point(310.0, 0.0)})
        patched = radio_map.with_updated_ues(moved, budget, [1])
        assert patched.link(0, 0) is before

    def test_empty_update_returns_self(self, tiny_network):
        radio_map = build_radio_map(tiny_network, LinkBudget())
        assert radio_map.with_updated_ues(
            tiny_network, LinkBudget(), []
        ) is radio_map

    def test_all_moved_update_matches_fresh_build(self, tiny_network):
        budget = LinkBudget()
        radio_map = build_radio_map(tiny_network, budget)
        moved = tiny_network.with_moved_ues({0: Point(42.0, 17.0)})
        patched = radio_map.with_updated_ues(moved, budget, [0])
        fresh = build_radio_map(moved, budget)
        assert [m for m in patched] == [m for m in fresh]
