"""Unit tests for ScenarioConfig and scenario construction."""

import pytest

from repro.errors import ConfigurationError
from repro.radio.ofdma import rrb_budget
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import (
    build_scenario,
    build_scenario_cached,
    clear_scenario_cache,
    scenario_cache_info,
)


class TestScenarioConfig:
    def test_paper_defaults(self):
        config = ScenarioConfig.paper()
        assert config.sp_count == 5
        assert config.bs_per_sp == 5
        assert config.bs_count == 25
        assert config.service_count == 6
        assert config.region_side_m == 1200.0
        assert config.inter_site_distance_m == 300.0
        assert config.cru_capacity_min == 100
        assert config.cru_capacity_max == 150
        assert config.cru_demand_min == 3
        assert config.cru_demand_max == 5
        assert config.rate_demand_min_bps == 2e6
        assert config.rate_demand_max_bps == 6e6
        assert config.uplink_bandwidth_hz == 10e6
        assert config.rrb_bandwidth_hz == 180e3
        assert config.tx_power_dbm == 10.0
        assert config.noise_dbm == -170.0
        assert config.distance_weight == 0.01

    def test_paper_overrides(self):
        config = ScenarioConfig.paper(cross_sp_markup=1.1, placement="random")
        assert config.cross_sp_markup == 1.1
        assert config.placement == "random"

    def test_with_creates_modified_copy(self):
        base = ScenarioConfig.paper()
        derived = base.with_(rho=99.0)
        assert derived.rho == 99.0
        assert base.rho == 10.0

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(sp_count=0)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(bs_per_sp=0)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(placement="hex")
        with pytest.raises(ConfigurationError):
            ScenarioConfig(coverage_radius_m=0.0)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(rho=-1.0)

    def test_workload_model_reflects_config(self):
        workload = ScenarioConfig.paper().workload_model()
        assert workload.cru_demand_min == 3
        assert workload.cru_demand_max == 5
        assert workload.tx_power_dbm == 10.0

    def test_service_catalog_reflects_config(self):
        catalog = ScenarioConfig.paper().service_catalog()
        assert catalog.service_count == 6
        assert catalog.cru_capacity_min == 100


class TestBuildScenario:
    def test_population_sizes(self, small_scenario):
        network = small_scenario.network
        assert network.sp_count == 5
        assert network.bs_count == 25
        assert network.ue_count == 120
        assert network.service_count == 6

    def test_each_sp_deploys_five_bss(self, small_scenario):
        for sp in small_scenario.network.providers:
            assert len(small_scenario.network.base_stations_of_sp(sp.sp_id)) == 5

    def test_rrb_budget_is_55(self, small_scenario):
        for bs in small_scenario.network.base_stations:
            assert bs.rrb_capacity == rrb_budget(10e6, 180e3) == 55

    def test_cru_capacities_in_paper_range(self, small_scenario):
        for bs in small_scenario.network.base_stations:
            assert set(bs.cru_capacity) == set(range(6))
            assert all(100 <= c <= 150 for c in bs.cru_capacity.values())

    def test_ue_demands_in_paper_range(self, small_scenario):
        for ue in small_scenario.network.user_equipments:
            assert 3 <= ue.cru_demand <= 5
            assert 2e6 <= ue.rate_demand_bps <= 6e6
            assert ue.tx_power_dbm == 10.0
            assert 0 <= ue.service_id < 6
            assert 0 <= ue.sp_id < 5

    def test_seed_determinism(self, paper_config):
        a = build_scenario(paper_config, ue_count=50, seed=3)
        b = build_scenario(paper_config, ue_count=50, seed=3)
        assert [ue.position for ue in a.network.user_equipments] == [
            ue.position for ue in b.network.user_equipments
        ]
        assert [bs.cru_capacity for bs in a.network.base_stations] == [
            bs.cru_capacity for bs in b.network.base_stations
        ]

    def test_different_seeds_differ(self, paper_config):
        a = build_scenario(paper_config, ue_count=50, seed=3)
        b = build_scenario(paper_config, ue_count=50, seed=4)
        assert [ue.position for ue in a.network.user_equipments] != [
            ue.position for ue in b.network.user_equipments
        ]

    def test_random_placement_differs_from_regular(self, paper_config):
        regular = build_scenario(paper_config, ue_count=10, seed=3)
        random_cfg = paper_config.with_(placement="random")
        randomized = build_scenario(random_cfg, ue_count=10, seed=3)
        assert [bs.position for bs in regular.network.base_stations] != [
            bs.position for bs in randomized.network.base_stations
        ]

    def test_radio_map_covers_all_candidates(self, small_scenario):
        for ue in small_scenario.network.user_equipments:
            for bs_id in small_scenario.network.candidate_base_stations(
                ue.ue_id
            ):
                assert small_scenario.radio_map.has_link(ue.ue_id, bs_id)

    def test_pricing_property_matches_config(self, small_scenario):
        pricing = small_scenario.pricing
        assert pricing.cross_sp_markup == small_scenario.config.cross_sp_markup
        assert pricing.distance_weight == small_scenario.config.distance_weight

    def test_tariff_violation_caught_at_build(self, paper_config):
        bad = paper_config.with_(sp_cru_price=3.0)
        from repro.errors import TariffViolationError

        with pytest.raises(TariffViolationError):
            build_scenario(bad, ue_count=10, seed=0)

    def test_dense_multi_coverage_premise(self, small_scenario):
        """The paper's premise: a UE tends to reach several BSs."""
        assert small_scenario.network.mean_coverage_degree() > 3.0


class TestScenarioCache:
    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        clear_scenario_cache()
        yield
        clear_scenario_cache()

    def test_hit_returns_same_instance(self):
        config = ScenarioConfig.paper()
        first = build_scenario_cached(config, 20, 7)
        second = build_scenario_cached(config, 20, 7)
        assert second is first
        info = scenario_cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 1

    def test_distinct_keys_miss(self):
        config = ScenarioConfig.paper()
        a = build_scenario_cached(config, 20, 7)
        b = build_scenario_cached(config, 20, 8)
        c = build_scenario_cached(config, 21, 7)
        d = build_scenario_cached(
            ScenarioConfig.paper(coverage_radius_m=450.0), 20, 7
        )
        assert len({id(s) for s in (a, b, c, d)}) == 4
        assert scenario_cache_info()["misses"] == 4

    def test_cached_matches_uncached_build(self):
        config = ScenarioConfig.paper()
        cached = build_scenario_cached(config, 15, 3)
        plain = build_scenario(config, 15, 3)
        assert len(cached.radio_map) == len(plain.radio_map)
        for link in plain.radio_map:
            assert cached.radio_map.link(link.ue_id, link.bs_id) == link

    def test_lru_eviction_respects_capacity(self, monkeypatch):
        monkeypatch.setenv("DMRA_SCENARIO_CACHE", "2")
        config = ScenarioConfig.paper()
        first = build_scenario_cached(config, 10, 0)
        build_scenario_cached(config, 10, 1)
        build_scenario_cached(config, 10, 2)  # evicts seed 0
        assert scenario_cache_info()["size"] == 2
        again = build_scenario_cached(config, 10, 0)
        assert again is not first
        assert scenario_cache_info()["misses"] == 4

    def test_zero_capacity_disables_caching(self, monkeypatch):
        monkeypatch.setenv("DMRA_SCENARIO_CACHE", "0")
        config = ScenarioConfig.paper()
        a = build_scenario_cached(config, 10, 0)
        b = build_scenario_cached(config, 10, 0)
        assert a is not b
        assert scenario_cache_info()["size"] == 0

    def test_clear_resets_counters(self):
        config = ScenarioConfig.paper()
        build_scenario_cached(config, 10, 0)
        clear_scenario_cache()
        info = scenario_cache_info()
        assert info == {
            "size": 0,
            "capacity": info["capacity"],
            "bytes": 0,
            "byte_capacity": info["byte_capacity"],
            "hits": 0,
            "misses": 0,
        }
