"""Conformance tests for the Prometheus text exposition.

Pins the exposition format against the parts of the Prometheus
text-format contract the scrape path relies on: label escaping,
``# HELP`` / ``# TYPE`` ordering, and the histogram family invariants
(cumulative buckets, ``+Inf`` equals ``_count``, ``_sum`` consistency).
Every rendered document must also survive :func:`parse_exposition` with
samples intact — the live endpoint and the CI smoke job scrape this
text back.
"""

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    Histogram,
    MetricFamily,
    MetricSample,
    MetricsDocument,
    histogram_family,
    parse_exposition,
    prometheus_exposition,
    validate_histogram_family,
)


def doc_of(*families: MetricFamily) -> MetricsDocument:
    return MetricsDocument(families=tuple(families))


def scalar_family(name="dmra_x", value=1.0, **labels) -> MetricFamily:
    return MetricFamily(
        name=name, kind="gauge", help=f"help for {name}",
        samples=(MetricSample.of(value, **labels),),
    )


class TestLabelEscaping:
    @pytest.mark.parametrize("raw,escaped", [
        ('back\\slash', 'back\\\\slash'),
        ('quo"te', 'quo\\"te'),
        ('new\nline', 'new\\nline'),
        ('all\\of"them\n', 'all\\\\of\\"them\\n'),
    ])
    def test_label_values_escape_and_round_trip(self, raw, escaped):
        text = prometheus_exposition(doc_of(scalar_family(note=raw)))
        assert f'note="{escaped}"' in text
        parsed = parse_exposition(text)
        assert parsed.family("dmra_x").sample(note=raw) == 1.0

    def test_help_text_escapes_backslash_and_newline(self):
        fam = MetricFamily(
            name="dmra_h", kind="gauge", help="line\nbreak\\slash",
            samples=(MetricSample.of(2.0),),
        )
        text = prometheus_exposition(doc_of(fam))
        assert "# HELP dmra_h line\\nbreak\\\\slash" in text
        assert parse_exposition(text).family("dmra_h").help == (
            "line\nbreak\\slash"
        )


class TestHelpTypeOrdering:
    def test_help_precedes_type_precedes_samples(self):
        text = prometheus_exposition(
            doc_of(scalar_family("dmra_a"), scalar_family("dmra_b"))
        )
        lines = text.splitlines()
        for name in ("dmra_a", "dmra_b"):
            help_i = lines.index(f"# HELP {name} help for {name}")
            type_i = lines.index(f"# TYPE {name} gauge")
            sample_i = next(
                i for i, line in enumerate(lines)
                if line.startswith(name)
            )
            assert help_i < type_i < sample_i

    def test_families_are_contiguous_blocks(self):
        text = prometheus_exposition(
            doc_of(scalar_family("dmra_a"), scalar_family("dmra_b"))
        )
        owners = [
            line.split()[2] if line.startswith("#") else
            line.split("{")[0].split()[0]
            for line in text.splitlines() if line
        ]
        # Once a family's block ends its name never reappears.
        seen_done: set[str] = set()
        previous = None
        for owner in owners:
            if owner != previous and previous is not None:
                seen_done.add(previous)
            assert owner not in seen_done
            previous = owner


class TestHistogramInvariants:
    def hist(self) -> Histogram:
        hist = Histogram(bounds=(0.001, 0.01, 0.1, 1.0))
        for value in (0.0005, 0.002, 0.003, 0.05, 2.0, 9.0):
            hist.observe(value)
        return hist

    def test_rendered_buckets_are_cumulative_and_end_at_count(self):
        fam = histogram_family("dmra_lat", "latency", self.hist(), unit="s")
        text = prometheus_exposition(doc_of(fam))
        lines = [
            line for line in text.splitlines()
            if line.startswith("dmra_lat_bucket")
        ]
        values = [float(line.rsplit(" ", 1)[1]) for line in lines]
        assert values == sorted(values)
        assert lines[-1].startswith('dmra_lat_bucket{le="+Inf"}')
        count_line = next(
            line for line in text.splitlines()
            if line.startswith("dmra_lat_count")
        )
        assert values[-1] == float(count_line.rsplit(" ", 1)[1]) == 6.0

    def test_sum_is_exact(self):
        hist = self.hist()
        fam = histogram_family("dmra_lat", "latency", hist)
        text = prometheus_exposition(doc_of(fam))
        sum_line = next(
            line for line in text.splitlines()
            if line.startswith("dmra_lat_sum")
        )
        assert float(sum_line.rsplit(" ", 1)[1]) == hist.sum

    def test_type_line_says_histogram(self):
        fam = histogram_family("dmra_lat", "latency", self.hist())
        assert "# TYPE dmra_lat histogram" in (
            prometheus_exposition(doc_of(fam))
        )

    def test_labeled_groups_each_carry_full_bucket_ladder(self):
        hists = {
            ("event", "arrival"): self.hist(),
            ("event", "departure"): self.hist(),
        }
        fam = histogram_family("dmra_lat", "latency", hists)
        validate_histogram_family(fam)
        text = prometheus_exposition(doc_of(fam))
        for value in ("arrival", "departure"):
            assert f'dmra_lat_bucket{{event="{value}",le="+Inf"}} 6' in text

    def test_validator_rejects_non_cumulative_buckets(self):
        fam = histogram_family("dmra_lat", "latency", self.hist())
        broken = MetricFamily(
            name=fam.name, kind=fam.kind, help=fam.help,
            samples=tuple(
                MetricSample(labels=s.labels, value=s.value * -1.0)
                if s.labels_dict.get("le") == "+Inf" else s
                for s in fam.samples
            ),
        )
        with pytest.raises(ConfigurationError):
            validate_histogram_family(broken)


class TestParseRoundTrip:
    def document(self) -> MetricsDocument:
        hist = Histogram(bounds=(0.5, 1.0, 2.0))
        for value in (0.1, 0.7, 3.0):
            hist.observe(value)
        return doc_of(
            scalar_family("dmra_gauge", 4.25, sp=1),
            histogram_family("dmra_lat", "latency", hist, unit="s"),
        )

    def test_exposition_parse_exposition_is_stable(self):
        text = prometheus_exposition(self.document())
        parsed = parse_exposition(text)
        assert prometheus_exposition(parsed) == text

    def test_parsed_histogram_family_still_validates(self):
        parsed = parse_exposition(
            prometheus_exposition(self.document())
        )
        fam = parsed.family("dmra_lat")
        assert fam.kind == "histogram"
        validate_histogram_family(fam)

    def test_parse_rejects_untyped_samples(self):
        with pytest.raises(ConfigurationError):
            parse_exposition("dmra_untyped 1.0\n")
