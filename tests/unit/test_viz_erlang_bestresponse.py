"""Unit tests for SVG rendering, Erlang-B, and the best-response baseline."""

import math
import xml.etree.ElementTree as ET

import pytest

from repro.baselines.best_response import BestResponseAllocator
from repro.core.dmra import DMRAAllocator
from repro.dynamics.erlang import edge_server_estimate, erlang_b_blocking
from repro.econ.accounting import compute_profit
from repro.errors import AllocationError, ConfigurationError
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario
from repro.viz.svg import render_svg, write_svg


class TestSvg:
    def test_document_is_well_formed_xml(self, small_scenario):
        document = render_svg(small_scenario.network)
        root = ET.fromstring(document)
        assert root.tag.endswith("svg")

    def test_contains_all_entities(self, small_scenario):
        assignment = DMRAAllocator(
            pricing=small_scenario.pricing
        ).allocate(small_scenario.network, small_scenario.radio_map)
        document = render_svg(small_scenario.network, assignment)
        # One <rect> per BS (plus background + frame + legend swatches).
        rect_count = document.count("<rect")
        assert rect_count >= small_scenario.network.bs_count
        # One <circle> per UE.
        assert document.count("<circle") >= small_scenario.network.ue_count
        # One <line> per association.
        assert document.count("<line") == assignment.edge_served_count

    def test_coverage_circles_optional(self, small_scenario):
        without = render_svg(small_scenario.network, show_coverage=False)
        with_cov = render_svg(small_scenario.network, show_coverage=True)
        assert with_cov.count("stroke-dasharray") > without.count(
            "stroke-dasharray"
        )

    def test_title_escaped(self, small_scenario):
        document = render_svg(
            small_scenario.network, title="a <b> & c"
        )
        assert "a &lt;b&gt; &amp; c" in document

    def test_write_svg_creates_file(self, small_scenario, tmp_path):
        path = write_svg(
            tmp_path / "deep" / "map.svg", small_scenario.network
        )
        assert path.exists()
        assert path.read_text().startswith("<svg")

    def test_size_guard(self, small_scenario):
        with pytest.raises(ConfigurationError):
            render_svg(small_scenario.network, size_px=50)


class TestErlangB:
    def test_known_values(self):
        # Classic textbook values.
        assert erlang_b_blocking(1, 1.0) == pytest.approx(0.5)
        assert erlang_b_blocking(2, 1.0) == pytest.approx(0.2)
        assert erlang_b_blocking(10, 5.0) == pytest.approx(0.0184, abs=1e-3)

    def test_zero_load_no_blocking(self):
        assert erlang_b_blocking(10, 0.0) == 0.0

    def test_zero_servers_block_everything(self):
        assert erlang_b_blocking(0, 5.0) == 1.0

    def test_monotone_in_load_and_servers(self):
        loads = [erlang_b_blocking(20, a) for a in (5.0, 15.0, 30.0, 60.0)]
        assert loads == sorted(loads)
        servers = [erlang_b_blocking(c, 20.0) for c in (5, 10, 20, 40)]
        assert servers == sorted(servers, reverse=True)

    def test_large_c_numerically_stable(self):
        value = erlang_b_blocking(2000, 1900.0)
        assert 0.0 <= value <= 1.0
        assert math.isfinite(value)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            erlang_b_blocking(-1, 1.0)
        with pytest.raises(ConfigurationError):
            erlang_b_blocking(1, -1.0)

    def test_server_estimate(self, small_scenario):
        estimate = edge_server_estimate(
            small_scenario.network, small_scenario.radio_map
        )
        total_rrbs = 25 * 55
        assert 1 <= estimate <= total_rrbs


class TestBestResponse:
    def test_converges_to_valid_assignment(self, small_scenario):
        allocator = BestResponseAllocator(pricing=small_scenario.pricing)
        assignment = allocator.allocate(
            small_scenario.network, small_scenario.radio_map
        )
        assignment.validate(small_scenario.network, small_scenario.radio_map)
        assert assignment.edge_served_count > 0

    def test_equilibrium_no_profitable_unilateral_move(self, small_scenario):
        """At the fixpoint no UE can move to a cheaper BS that fits it —
        the Nash property, checked via the stability analyzer."""
        from repro.analysis.stability import analyze_stability

        allocator = BestResponseAllocator(pricing=small_scenario.pricing)
        assignment = allocator.allocate(
            small_scenario.network, small_scenario.radio_map
        )
        report = analyze_stability(
            small_scenario.network,
            small_scenario.radio_map,
            assignment,
            small_scenario.pricing,
        )
        assert report.is_envy_free

    def test_dmra_profit_at_least_matches_selfish_equilibrium(self):
        """SP-coordinated DMRA should not lose to UE-selfish dynamics in
        the paper's load regime."""
        scenario = build_scenario(ScenarioConfig.paper(), 700, 3)
        dmra = DMRAAllocator(pricing=scenario.pricing).allocate(
            scenario.network, scenario.radio_map
        )
        selfish = BestResponseAllocator(pricing=scenario.pricing).allocate(
            scenario.network, scenario.radio_map
        )
        dmra_profit = compute_profit(
            scenario.network, dmra.grants, scenario.pricing
        ).total_profit
        selfish_profit = compute_profit(
            scenario.network, selfish.grants, scenario.pricing
        ).total_profit
        assert dmra_profit >= selfish_profit * 0.99

    def test_deterministic(self, small_scenario):
        allocator = BestResponseAllocator(pricing=small_scenario.pricing)
        a = allocator.allocate(
            small_scenario.network, small_scenario.radio_map
        )
        b = allocator.allocate(
            small_scenario.network, small_scenario.radio_map
        )
        assert a.association_pairs() == b.association_pairs()

    def test_invalid_max_sweeps(self):
        with pytest.raises(AllocationError):
            BestResponseAllocator(max_sweeps=0)


class TestErlangValidation:
    def test_simulated_blocking_bounded_by_analytic(self):
        """The flexible simulator should never block *more* than the
        rigid M/M/c/c approximation at the same offered load, and both
        must agree that sub-capacity load sees ~zero blocking."""
        from repro.dynamics import (
            ExponentialHolding,
            OnlineConfig,
            PoissonArrivals,
            run_online,
        )

        config = ScenarioConfig.paper()
        scenario = build_scenario(config, 600, 1)
        servers = edge_server_estimate(scenario.network, scenario.radio_map)
        holding_s = 150.0
        for rate, overloaded in ((3.0, False), (10.0, True)):
            analytic = erlang_b_blocking(servers, rate * holding_s)
            outcome = run_online(
                config,
                OnlineConfig(
                    horizon_s=300.0,
                    arrivals=PoissonArrivals(rate_per_s=rate),
                    holding=ExponentialHolding(mean_s=holding_s),
                ),
                seed=2,
            )
            assert outcome.blocking_probability <= analytic + 0.02
            if not overloaded:
                assert analytic < 0.01
                assert outcome.blocking_probability < 0.01
