"""Unit tests for the DMRA preference functions (Eq. 17 + BS ranking)."""

import math

import pytest

from conftest import make_tiny_network
from repro.compute.cru import LedgerPool
from repro.core.matching import MatchingContext
from repro.core.preferences import dmra_bs_rank_key, dmra_ue_score
from repro.econ.pricing import PaperPricing
from repro.errors import ConfigurationError
from repro.model.geometry import Point
from repro.radio.channel import build_radio_map
from repro.radio.sinr import LinkBudget

PRICING = PaperPricing(base_price=1.0, cross_sp_markup=2.0, distance_weight=0.01)


def make_context(network):
    return MatchingContext(
        network=network,
        radio_map=build_radio_map(network, LinkBudget()),
        ledgers=LedgerPool(network.base_stations),
        candidate_sets={
            ue.ue_id: list(network.candidate_base_stations(ue.ue_id))
            for ue in network.user_equipments
        },
    )


class TestUEScore:
    def test_eq17_value(self, tiny_network):
        ctx = make_context(tiny_network)
        ue = tiny_network.user_equipment(0)
        # BS 0: same SP, 100 m; slack = 20 CRUs + 10 RRBs = 30.
        expected = PRICING.price_per_cru(100.0, True) + 10.0 / 30.0
        assert dmra_ue_score(ue, 0, ctx, PRICING, rho=10.0) == pytest.approx(
            expected
        )

    def test_rho_zero_is_pure_price(self, tiny_network):
        ctx = make_context(tiny_network)
        ue = tiny_network.user_equipment(0)
        assert dmra_ue_score(ue, 0, ctx, PRICING, rho=0.0) == pytest.approx(
            PRICING.price_per_cru(100.0, True)
        )

    def test_score_grows_as_bs_fills(self, tiny_network):
        ctx = make_context(tiny_network)
        ue = tiny_network.user_equipment(0)
        before = dmra_ue_score(ue, 0, ctx, PRICING, rho=10.0)
        ctx.ledgers.ledger(0).grant(ue_id=9, service_id=0, crus=10, rrbs=5)
        after = dmra_ue_score(ue, 0, ctx, PRICING, rho=10.0)
        assert after > before

    def test_zero_slack_is_infinite(self, tiny_network):
        ctx = make_context(tiny_network)
        ue = tiny_network.user_equipment(0)
        ledger = ctx.ledgers.ledger(0)
        ledger.grant(ue_id=9, service_id=0, crus=20, rrbs=10)
        assert math.isinf(dmra_ue_score(ue, 0, ctx, PRICING, rho=10.0))

    def test_zero_slack_zero_rho_falls_back_to_price(self, tiny_network):
        ctx = make_context(tiny_network)
        ue = tiny_network.user_equipment(0)
        ctx.ledgers.ledger(0).grant(ue_id=9, service_id=0, crus=20, rrbs=10)
        assert dmra_ue_score(ue, 0, ctx, PRICING, rho=0.0) == pytest.approx(
            PRICING.price_per_cru(100.0, True)
        )

    def test_negative_rho_rejected(self, tiny_network):
        ctx = make_context(tiny_network)
        ue = tiny_network.user_equipment(0)
        with pytest.raises(ConfigurationError):
            dmra_ue_score(ue, 0, ctx, PRICING, rho=-1.0)

    def test_cross_sp_bs_costs_more_at_equal_distance(self):
        # Put both BSs 200 m from the UE: only ownership differs.
        network = make_tiny_network(
            ue_specs=[dict(ue_id=0, position=Point(200.0, 0.0))]
        )
        ctx = make_context(network)
        ue = network.user_equipment(0)
        same = dmra_ue_score(ue, 0, ctx, PRICING, rho=0.0)
        cross = dmra_ue_score(ue, 1, ctx, PRICING, rho=0.0)
        assert cross > same
        assert cross - same == pytest.approx(1.0)  # (iota - 1) * b


class TestBSRankKey:
    def test_same_sp_ranks_first(self, tiny_network):
        ctx = make_context(tiny_network)
        key_same = dmra_bs_rank_key(0, 0, ctx)
        key_cross = dmra_bs_rank_key(0, 1, ctx)
        assert key_same[0] == 0 and key_cross[0] == 1
        assert key_same < key_cross

    def test_fewer_options_ranks_earlier(self):
        # UE 1 reaches only BS 0 (coverage); UE 0 reaches both.
        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=0, position=Point(200.0, 0.0)),
                dict(ue_id=1, position=Point(-350.0, 0.0)),
            ],
            coverage_radius_m=400.0,
        )
        ctx = make_context(network)
        assert ctx.feasible_bs_count(0) == 2
        assert ctx.feasible_bs_count(1) == 1
        key_flexible = dmra_bs_rank_key(0, 0, ctx)
        key_constrained = dmra_bs_rank_key(1, 0, ctx)
        assert key_constrained < key_flexible

    def test_footprint_breaks_ties(self):
        # Same SP, same coverage degree; UE 1 demands more CRUs.
        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=0, position=Point(100.0, 0.0), cru_demand=3),
                dict(ue_id=1, position=Point(100.0, 1.0), cru_demand=5),
            ]
        )
        ctx = make_context(network)
        assert dmra_bs_rank_key(0, 0, ctx) < dmra_bs_rank_key(1, 0, ctx)

    def test_key_is_three_components(self, tiny_network):
        ctx = make_context(tiny_network)
        key = dmra_bs_rank_key(0, 0, ctx)
        assert len(key) == 3
        assert all(isinstance(part, int) for part in key)
