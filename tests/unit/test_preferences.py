"""Unit tests for the DMRA preference functions (Eq. 17 + BS ranking)."""

import math

import pytest

from conftest import make_tiny_network
from repro.compute.cru import LedgerPool
from repro.core.matching import MatchingContext
from repro.core.preferences import (
    dmra_bs_rank_key,
    dmra_slack_term,
    dmra_ue_score,
)
from repro.econ.pricing import PaperPricing
from repro.errors import ConfigurationError
from repro.model.geometry import Point
from repro.radio.channel import build_radio_map
from repro.radio.sinr import LinkBudget

PRICING = PaperPricing(base_price=1.0, cross_sp_markup=2.0, distance_weight=0.01)


def make_context(network):
    return MatchingContext(
        network=network,
        radio_map=build_radio_map(network, LinkBudget()),
        ledgers=LedgerPool(network.base_stations),
        candidate_sets={
            ue.ue_id: list(network.candidate_base_stations(ue.ue_id))
            for ue in network.user_equipments
        },
    )


class TestUEScore:
    def test_eq17_value(self, tiny_network):
        ctx = make_context(tiny_network)
        ue = tiny_network.user_equipment(0)
        # BS 0: same SP, 100 m; slack = 20 CRUs + 10 RRBs = 30.
        expected = PRICING.price_per_cru(100.0, True) + 10.0 / 30.0
        assert dmra_ue_score(ue, 0, ctx, PRICING, rho=10.0) == pytest.approx(
            expected
        )

    def test_rho_zero_is_pure_price(self, tiny_network):
        ctx = make_context(tiny_network)
        ue = tiny_network.user_equipment(0)
        assert dmra_ue_score(ue, 0, ctx, PRICING, rho=0.0) == pytest.approx(
            PRICING.price_per_cru(100.0, True)
        )

    def test_score_grows_as_bs_fills(self, tiny_network):
        ctx = make_context(tiny_network)
        ue = tiny_network.user_equipment(0)
        before = dmra_ue_score(ue, 0, ctx, PRICING, rho=10.0)
        ctx.ledgers.ledger(0).grant(ue_id=9, service_id=0, crus=10, rrbs=5)
        after = dmra_ue_score(ue, 0, ctx, PRICING, rho=10.0)
        assert after > before

    def test_zero_slack_is_infinite(self, tiny_network):
        ctx = make_context(tiny_network)
        ue = tiny_network.user_equipment(0)
        ledger = ctx.ledgers.ledger(0)
        ledger.grant(ue_id=9, service_id=0, crus=20, rrbs=10)
        assert math.isinf(dmra_ue_score(ue, 0, ctx, PRICING, rho=10.0))

    def test_zero_slack_zero_rho_falls_back_to_price(self, tiny_network):
        ctx = make_context(tiny_network)
        ue = tiny_network.user_equipment(0)
        ctx.ledgers.ledger(0).grant(ue_id=9, service_id=0, crus=20, rrbs=10)
        assert dmra_ue_score(ue, 0, ctx, PRICING, rho=0.0) == pytest.approx(
            PRICING.price_per_cru(100.0, True)
        )

    def test_negative_rho_rejected(self, tiny_network):
        ctx = make_context(tiny_network)
        ue = tiny_network.user_equipment(0)
        with pytest.raises(ConfigurationError):
            dmra_ue_score(ue, 0, ctx, PRICING, rho=-1.0)

    def test_cross_sp_bs_costs_more_at_equal_distance(self):
        # Put both BSs 200 m from the UE: only ownership differs.
        network = make_tiny_network(
            ue_specs=[dict(ue_id=0, position=Point(200.0, 0.0))]
        )
        ctx = make_context(network)
        ue = network.user_equipment(0)
        same = dmra_ue_score(ue, 0, ctx, PRICING, rho=0.0)
        cross = dmra_ue_score(ue, 1, ctx, PRICING, rho=0.0)
        assert cross > same
        assert cross - same == pytest.approx(1.0)  # (iota - 1) * b


class TestLedgerExhaustion:
    """Drive a ledger to exhaustion through successive grants and check
    the defined Eq. 17 limit behaviour at zero slack."""

    @staticmethod
    def _exhaust(ctx, bs_id=0, service_id=0):
        """Grant in small steps until CRU and RRB slack are both zero."""
        ledger = ctx.ledgers.ledger(bs_id)
        fake_ue = 100
        while ledger.remaining_crus(service_id) > 0:
            crus = min(4, ledger.remaining_crus(service_id))
            rrbs = min(2, ledger.remaining_rrbs)
            ledger.grant(
                ue_id=fake_ue, service_id=service_id, crus=crus, rrbs=rrbs
            )
            fake_ue += 1
        assert ledger.remaining_crus(service_id) == 0
        assert ledger.remaining_rrbs == 0

    def test_slack_term_grows_monotonically_to_exhaustion(self, tiny_network):
        ctx = make_context(tiny_network)
        ledger = ctx.ledgers.ledger(0)
        terms = [dmra_slack_term(0, 0, ctx, rho=10.0)]
        for step in range(5):  # 5 x (4 CRUs, 2 RRBs) drains 20/10 exactly
            ledger.grant(ue_id=100 + step, service_id=0, crus=4, rrbs=2)
            terms.append(dmra_slack_term(0, 0, ctx, rho=10.0))
        assert terms == sorted(terms)
        assert all(a < b for a, b in zip(terms, terms[1:]))
        assert math.isinf(terms[-1])

    def test_exhausted_slack_term_limits(self, tiny_network):
        ctx = make_context(tiny_network)
        self._exhaust(ctx)
        assert dmra_slack_term(0, 0, ctx, rho=10.0) == math.inf
        assert dmra_slack_term(0, 0, ctx, rho=0.0) == 0.0

    def test_exhausted_bs_ranks_last_in_ue_preference(self, tiny_network):
        # BS 0 is same-SP and closer: normally the strictly better deal.
        ctx = make_context(tiny_network)
        ue = tiny_network.user_equipment(0)
        assert dmra_ue_score(ue, 0, ctx, PRICING, rho=10.0) < dmra_ue_score(
            ue, 1, ctx, PRICING, rho=10.0
        )
        # Once exhausted its score hits +inf and it drops to dead last.
        self._exhaust(ctx)
        exhausted = dmra_ue_score(ue, 0, ctx, PRICING, rho=10.0)
        assert math.isinf(exhausted)
        assert dmra_ue_score(ue, 1, ctx, PRICING, rho=10.0) < exhausted

    def test_exhausted_bs_with_zero_rho_keeps_price_ordering(
        self, tiny_network
    ):
        # With rho = 0 exhaustion cannot reorder anything: the score is
        # the bare price term (feasibility filtering is the engine's job).
        ctx = make_context(tiny_network)
        ue = tiny_network.user_equipment(0)
        self._exhaust(ctx)
        assert dmra_ue_score(ue, 0, ctx, PRICING, rho=0.0) == pytest.approx(
            PRICING.price_per_cru(100.0, True)
        )


class TestBSRankKey:
    def test_same_sp_ranks_first(self, tiny_network):
        ctx = make_context(tiny_network)
        key_same = dmra_bs_rank_key(0, 0, ctx)
        key_cross = dmra_bs_rank_key(0, 1, ctx)
        assert key_same[0] == 0 and key_cross[0] == 1
        assert key_same < key_cross

    def test_fewer_options_ranks_earlier(self):
        # UE 1 reaches only BS 0 (coverage); UE 0 reaches both.
        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=0, position=Point(200.0, 0.0)),
                dict(ue_id=1, position=Point(-350.0, 0.0)),
            ],
            coverage_radius_m=400.0,
        )
        ctx = make_context(network)
        assert ctx.feasible_bs_count(0) == 2
        assert ctx.feasible_bs_count(1) == 1
        key_flexible = dmra_bs_rank_key(0, 0, ctx)
        key_constrained = dmra_bs_rank_key(1, 0, ctx)
        assert key_constrained < key_flexible

    def test_footprint_breaks_ties(self):
        # Same SP, same coverage degree; UE 1 demands more CRUs.
        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=0, position=Point(100.0, 0.0), cru_demand=3),
                dict(ue_id=1, position=Point(100.0, 1.0), cru_demand=5),
            ]
        )
        ctx = make_context(network)
        assert dmra_bs_rank_key(0, 0, ctx) < dmra_bs_rank_key(1, 0, ctx)

    def test_key_is_three_components(self, tiny_network):
        ctx = make_context(tiny_network)
        key = dmra_bs_rank_key(0, 0, ctx)
        assert len(key) == 3
        assert all(isinstance(part, int) for part in key)
