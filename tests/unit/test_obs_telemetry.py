"""Unit tests for the telemetry core (spans, metrics, registry)."""

import pytest

from repro.obs.telemetry import (
    NULL,
    GaugeStat,
    NullTelemetry,
    Recorder,
    TimerStat,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)


class TestNullBackend:
    def test_default_backend_is_null(self):
        assert get_telemetry() is NULL
        assert not get_telemetry().enabled

    def test_null_operations_are_noops(self):
        tel = NullTelemetry()
        with tel.span("anything", attr=1) as span:
            span.set(more=2)
        tel.count("c")
        tel.count("c", 5)
        tel.gauge("g", 1.0)
        with tel.timer("t"):
            pass

    def test_null_span_is_shared_singleton(self):
        tel = NullTelemetry()
        assert tel.span("a") is tel.span("b") is tel.timer("c")


class TestRegistry:
    def test_set_telemetry_returns_previous(self):
        recorder = Recorder()
        previous = set_telemetry(recorder)
        try:
            assert previous is NULL
            assert get_telemetry() is recorder
        finally:
            set_telemetry(previous)
        assert get_telemetry() is NULL

    def test_session_installs_and_restores(self):
        with telemetry_session() as recorder:
            assert get_telemetry() is recorder
            assert recorder.enabled
        assert get_telemetry() is NULL

    def test_session_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with telemetry_session():
                raise RuntimeError("boom")
        assert get_telemetry() is NULL

    def test_session_accepts_existing_recorder(self):
        recorder = Recorder(meta={"k": "v"})
        with telemetry_session(recorder) as installed:
            assert installed is recorder


class TestSpans:
    def test_spans_nest_into_a_tree(self):
        rec = Recorder()
        with rec.span("outer"):
            with rec.span("inner.a"):
                pass
            with rec.span("inner.b"):
                pass
        assert [s.name for s in rec.all_spans()] == [
            "outer", "inner.a", "inner.b",
        ]
        (outer,) = rec.roots
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]

    def test_span_times_are_ordered(self):
        rec = Recorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        (outer,) = rec.roots
        (inner,) = outer.children
        assert 0.0 <= outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s
        assert outer.duration_s >= inner.duration_s >= 0.0

    def test_span_attrs_at_open_and_via_set(self):
        rec = Recorder()
        with rec.span("s", a=1) as span:
            span.set(b=2.5, c="x")
        assert rec.roots[0].attrs == {"a": 1, "b": 2.5, "c": "x"}

    def test_exception_closes_span_and_records_error(self):
        rec = Recorder()
        with pytest.raises(ValueError):
            with rec.span("outer"):
                with rec.span("inner"):
                    raise ValueError("boom")
        (outer,) = rec.roots
        (inner,) = outer.children
        assert outer.attrs["error"] == "ValueError"
        assert inner.attrs["error"] == "ValueError"
        assert inner.end_s <= outer.end_s

    def test_sequential_roots(self):
        rec = Recorder()
        with rec.span("first"):
            pass
        with rec.span("second"):
            pass
        assert [s.name for s in rec.roots] == ["first", "second"]


class TestMetrics:
    def test_counters_accumulate(self):
        rec = Recorder()
        rec.count("c")
        rec.count("c", 4)
        rec.count("other", 2.5)
        assert rec.counters == {"c": 5, "other": 2.5}

    def test_gauges_track_last_min_max_count(self):
        rec = Recorder()
        for value in (3.0, 1.0, 7.0):
            rec.gauge("g", value)
        stat = rec.gauges["g"]
        assert stat == GaugeStat(value=7.0, min=1.0, max=7.0, count=3)

    def test_timers_aggregate(self):
        rec = Recorder()
        rec.record_timer("t", 0.5)
        rec.record_timer("t", 0.1)
        stat = rec.timers["t"]
        assert stat == TimerStat(count=2, total_s=0.6, min_s=0.1, max_s=0.5)
        assert stat.mean_s == pytest.approx(0.3)

    def test_timer_context_manager_measures(self):
        rec = Recorder()
        with rec.timer("t"):
            pass
        stat = rec.timers["t"]
        assert stat.count == 1
        assert stat.total_s >= 0.0


class TestChildAbsorb:
    def test_child_shares_epoch(self):
        parent = Recorder()
        child = parent.child()
        assert abs(parent.now_s() - child.now_s()) < 0.05

    def test_absorb_grafts_under_open_span(self):
        parent = Recorder()
        child = parent.child()
        with child.span("cell"):
            pass
        with parent.span("sweep"):
            parent.absorb(child)
        (sweep,) = parent.roots
        assert [c.name for c in sweep.children] == ["cell"]

    def test_absorb_at_top_level_appends_roots(self):
        parent = Recorder()
        child = parent.child()
        with child.span("cell"):
            pass
        parent.absorb(child)
        assert [s.name for s in parent.roots] == ["cell"]

    def test_absorb_folds_metrics(self):
        parent = Recorder()
        parent.count("c", 1)
        parent.gauge("g", 5.0)
        parent.record_timer("t", 1.0)
        child = parent.child()
        child.count("c", 2)
        child.count("only_child", 7)
        child.gauge("g", 1.0)
        child.record_timer("t", 0.25)
        parent.absorb(child)
        assert parent.counters == {"c": 3, "only_child": 7}
        gauge = parent.gauges["g"]
        assert (gauge.min, gauge.max, gauge.count) == (1.0, 5.0, 2)
        timer = parent.timers["t"]
        assert timer == TimerStat(count=2, total_s=1.25, min_s=0.25, max_s=1.0)

    def test_absorb_order_is_call_order(self):
        parent = Recorder()
        children = []
        for index in range(3):
            child = parent.child()
            with child.span(f"cell{index}"):
                pass
            children.append(child)
        with parent.span("sweep"):
            for child in children:
                parent.absorb(child)
        (sweep,) = parent.roots
        assert [c.name for c in sweep.children] == ["cell0", "cell1", "cell2"]
