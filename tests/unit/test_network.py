"""Unit tests for the MECNetwork container."""

import pytest

from conftest import make_tiny_network
from repro.errors import ConfigurationError, UnknownEntityError
from repro.model.entities import (
    BaseStation,
    Service,
    ServiceProvider,
    UserEquipment,
)
from repro.model.geometry import Point, Rectangle
from repro.model.network import MECNetwork


class TestLookups:
    def test_entity_lookups(self, tiny_network):
        assert tiny_network.provider(0).name == "SP-0"
        assert tiny_network.base_station(1).sp_id == 1
        assert tiny_network.user_equipment(0).sp_id == 0
        assert tiny_network.service(1).name == "svc-1"

    def test_unknown_ids_raise(self, tiny_network):
        with pytest.raises(UnknownEntityError):
            tiny_network.provider(99)
        with pytest.raises(UnknownEntityError):
            tiny_network.base_station(99)
        with pytest.raises(UnknownEntityError):
            tiny_network.user_equipment(99)
        with pytest.raises(UnknownEntityError):
            tiny_network.service(99)

    def test_provider_of_ue(self, tiny_network):
        assert tiny_network.provider_of_ue(0).sp_id == 0

    def test_entities_of_sp(self, tiny_network):
        assert [bs.bs_id for bs in tiny_network.base_stations_of_sp(0)] == [0]
        assert [ue.ue_id for ue in tiny_network.user_equipments_of_sp(0)] == [0]
        assert tiny_network.user_equipments_of_sp(1) == ()

    def test_counts(self, tiny_network):
        assert tiny_network.sp_count == 2
        assert tiny_network.bs_count == 2
        assert tiny_network.ue_count == 1
        assert tiny_network.service_count == 2


class TestGeometryQueries:
    def test_distance_matches_positions(self, tiny_network):
        # UE 0 at (100, 0); BS 0 at (0, 0); BS 1 at (400, 0).
        assert tiny_network.distance_m(0, 0) == pytest.approx(100.0)
        assert tiny_network.distance_m(0, 1) == pytest.approx(300.0)

    def test_distance_unknown_entity(self, tiny_network):
        with pytest.raises(UnknownEntityError):
            tiny_network.distance_m(99, 0)
        with pytest.raises(UnknownEntityError):
            tiny_network.distance_m(0, 99)

    def test_distance_matrix_shape_and_copy(self, tiny_network):
        matrix = tiny_network.distance_matrix_m()
        assert matrix.shape == (1, 2)
        matrix[0, 0] = -1.0  # mutating the copy must not affect the network
        assert tiny_network.distance_m(0, 0) == pytest.approx(100.0)

    def test_covers_respects_radius(self):
        network = make_tiny_network(coverage_radius_m=150.0)
        assert network.covers(0, 0)  # 100 m <= 150 m
        assert not network.covers(1, 0)  # 300 m > 150 m

    def test_covering_base_stations(self, tiny_network):
        assert set(tiny_network.covering_base_stations(0)) == {0, 1}

    def test_same_sp(self, tiny_network):
        assert tiny_network.same_sp(0, 0)
        assert not tiny_network.same_sp(0, 1)


class TestCandidateSets:
    def test_candidates_require_coverage_and_service(self):
        # BS 1 does not host service 0 -> excluded despite coverage.
        network = make_tiny_network(
            bs_specs=[
                dict(bs_id=0, sp_id=0, position=Point(0, 0)),
                dict(
                    bs_id=1,
                    sp_id=1,
                    position=Point(400, 0),
                    cru_capacity={1: 20},
                ),
            ]
        )
        assert network.candidate_base_stations(0) == (0,)

    def test_zero_cru_hosting_excluded(self):
        network = make_tiny_network(
            bs_specs=[
                dict(bs_id=0, sp_id=0, position=Point(0, 0)),
                dict(
                    bs_id=1,
                    sp_id=1,
                    position=Point(400, 0),
                    cru_capacity={0: 0, 1: 20},
                ),
            ]
        )
        assert network.candidate_base_stations(0) == (0,)

    def test_out_of_coverage_ue_has_empty_candidates(self):
        network = make_tiny_network(
            ue_specs=[dict(ue_id=0, position=Point(1200.0, 1200.0))],
            coverage_radius_m=200.0,
        )
        assert network.candidate_base_stations(0) == ()

    def test_candidates_unknown_ue(self, tiny_network):
        with pytest.raises(UnknownEntityError):
            tiny_network.candidate_base_stations(42)

    def test_mean_coverage_degree(self, tiny_network):
        assert tiny_network.mean_coverage_degree() == pytest.approx(2.0)


class TestValidation:
    def base_args(self):
        return dict(
            providers=[ServiceProvider(sp_id=0)],
            services=[Service(0)],
            region=Rectangle.square(100.0),
        )

    def test_duplicate_ids_rejected(self):
        args = self.base_args()
        with pytest.raises(ConfigurationError, match="duplicate"):
            MECNetwork(
                base_stations=[
                    BaseStation(0, 0, Point(0, 0), {0: 10}),
                    BaseStation(0, 0, Point(1, 1), {0: 10}),
                ],
                user_equipments=[],
                **args,
            )

    def test_bs_with_unknown_sp_rejected(self):
        args = self.base_args()
        with pytest.raises(ConfigurationError, match="unknown SP"):
            MECNetwork(
                base_stations=[BaseStation(0, 7, Point(0, 0), {0: 10})],
                user_equipments=[],
                **args,
            )

    def test_bs_hosting_unknown_service_rejected(self):
        args = self.base_args()
        with pytest.raises(ConfigurationError, match="unknown service"):
            MECNetwork(
                base_stations=[BaseStation(0, 0, Point(0, 0), {5: 10})],
                user_equipments=[],
                **args,
            )

    def test_ue_with_unknown_sp_rejected(self):
        args = self.base_args()
        with pytest.raises(ConfigurationError, match="unknown SP"):
            MECNetwork(
                base_stations=[],
                user_equipments=[
                    UserEquipment(0, 7, Point(0, 0), 0, 3, 2e6)
                ],
                **args,
            )

    def test_ue_requesting_unknown_service_rejected(self):
        args = self.base_args()
        with pytest.raises(ConfigurationError, match="unknown service"):
            MECNetwork(
                base_stations=[],
                user_equipments=[
                    UserEquipment(0, 0, Point(0, 0), 9, 3, 2e6)
                ],
                **args,
            )

    def test_non_positive_coverage_radius_rejected(self):
        args = self.base_args()
        with pytest.raises(ConfigurationError):
            MECNetwork(
                base_stations=[],
                user_equipments=[],
                coverage_radius_m=0.0,
                **args,
            )

    def test_describe_mentions_populations(self, tiny_network):
        text = tiny_network.describe()
        assert "2 SPs" in text
        assert "2 BSs" in text
        assert "1 UEs" in text


class TestCandidateMask:
    def test_mask_matches_candidate_sets(self):
        network = make_tiny_network(
            ue_specs=[dict(ue_id=0), dict(ue_id=1), dict(ue_id=2)]
        )
        mask = network.candidate_mask()
        assert mask.shape == (3, 2)
        for ue in network.user_equipments:
            row = network.row_of_ue(ue.ue_id)
            from_mask = {
                bs.bs_id
                for bs in network.base_stations
                if mask[row, network.col_of_bs(bs.bs_id)]
            }
            assert from_mask == set(
                network.candidate_base_stations(ue.ue_id)
            )

    def test_mask_is_read_only(self):
        network = make_tiny_network()
        with pytest.raises(ValueError):
            network.candidate_mask()[0, 0] = False

    def test_row_and_col_lookups_reject_unknown_ids(self):
        network = make_tiny_network()
        with pytest.raises(UnknownEntityError):
            network.row_of_ue(999)
        with pytest.raises(UnknownEntityError):
            network.col_of_bs(999)


class TestWithMovedUEs:
    def _fresh_equivalent(self, network):
        return MECNetwork(
            providers=network.providers,
            base_stations=network.base_stations,
            user_equipments=network.user_equipments,
            services=network.services,
            region=network.region,
            coverage_radius_m=network.coverage_radius_m,
        )

    def test_patched_network_matches_fresh_construction(self):
        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=0, position=Point(100.0, 0.0)),
                dict(ue_id=1, position=Point(250.0, 0.0)),
                dict(ue_id=2, position=Point(380.0, 0.0)),
            ]
        )
        moved = network.with_moved_ues(
            {0: Point(390.0, 10.0), 2: Point(20.0, 5.0)}
        )
        fresh = self._fresh_equivalent(moved)
        for ue in fresh.user_equipments:
            assert moved.candidate_base_stations(
                ue.ue_id
            ) == fresh.candidate_base_stations(ue.ue_id)
            for bs in fresh.base_stations:
                assert moved.distance_m(ue.ue_id, bs.bs_id) == (
                    fresh.distance_m(ue.ue_id, bs.bs_id)
                )
        assert (moved.candidate_mask() == fresh.candidate_mask()).all()

    def test_positions_updated_only_for_moved(self):
        network = make_tiny_network(
            ue_specs=[dict(ue_id=0), dict(ue_id=1)]
        )
        target = Point(321.0, 12.0)
        moved = network.with_moved_ues({1: target})
        assert moved.user_equipment(1).position == target
        assert moved.user_equipment(0).position == (
            network.user_equipment(0).position
        )

    def test_shares_static_structure(self):
        network = make_tiny_network()
        moved = network.with_moved_ues({0: Point(10.0, 10.0)})
        assert moved.base_stations is network.base_stations
        assert moved.providers is network.providers
        assert moved.services is network.services

    def test_empty_move_returns_self(self):
        network = make_tiny_network()
        assert network.with_moved_ues({}) is network

    def test_unknown_ue_rejected(self):
        network = make_tiny_network()
        with pytest.raises(UnknownEntityError):
            network.with_moved_ues({999: Point(0.0, 0.0)})

    def test_original_network_is_untouched(self):
        network = make_tiny_network()
        before = network.user_equipment(0).position
        mask_before = network.candidate_mask().copy()
        network.with_moved_ues({0: Point(599.0, 599.0)})
        assert network.user_equipment(0).position == before
        assert (network.candidate_mask() == mask_before).all()
