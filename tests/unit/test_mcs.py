"""Unit tests for the discrete MCS rate model."""

import pytest

from repro.errors import ConfigurationError
from repro.radio.mcs import MCS_TABLE, mcs_for_sinr, mcs_rate_bps
from repro.radio.ofdma import per_rrb_rate_bps
from repro.radio.units import db_to_linear
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario


class TestMcsTable:
    def test_fifteen_levels(self):
        assert len(MCS_TABLE) == 15
        assert [e.cqi for e in MCS_TABLE] == list(range(1, 16))

    def test_thresholds_and_efficiencies_monotone(self):
        thresholds = [e.min_sinr_db for e in MCS_TABLE]
        efficiencies = [e.efficiency_bps_hz for e in MCS_TABLE]
        assert thresholds == sorted(thresholds)
        assert efficiencies == sorted(efficiencies)

    def test_modulations_progress(self):
        assert MCS_TABLE[0].modulation == "QPSK"
        assert MCS_TABLE[-1].modulation == "64QAM"


class TestMcsForSinr:
    def test_below_lowest_threshold_is_none(self):
        assert mcs_for_sinr(db_to_linear(-10.0)) is None

    def test_zero_sinr_is_none(self):
        assert mcs_for_sinr(0.0) is None

    def test_high_sinr_reaches_top_cqi(self):
        assert mcs_for_sinr(db_to_linear(60.0)).cqi == 15

    def test_threshold_boundaries(self):
        # Exactly at CQI 9's threshold (10.3 dB) -> CQI 9.
        entry = mcs_for_sinr(db_to_linear(10.3))
        assert entry.cqi == 9
        # Just below -> CQI 8.
        entry = mcs_for_sinr(db_to_linear(10.29))
        assert entry.cqi == 8

    def test_selection_monotone_in_sinr(self):
        cqis = []
        for db in range(-7, 41):
            entry = mcs_for_sinr(db_to_linear(float(db)))
            cqis.append(entry.cqi if entry else 0)
        assert cqis == sorted(cqis)

    def test_negative_sinr_rejected(self):
        with pytest.raises(ConfigurationError):
            mcs_for_sinr(-0.1)


class TestMcsRate:
    def test_rate_zero_below_cqi1(self):
        assert mcs_rate_bps(180e3, db_to_linear(-10.0)) == 0.0

    def test_rate_at_top_cqi(self):
        rate = mcs_rate_bps(180e3, db_to_linear(60.0))
        assert rate == pytest.approx(180e3 * 5.5547)

    def test_never_exceeds_shannon(self):
        for db in range(-6, 40):
            sinr = db_to_linear(float(db))
            assert mcs_rate_bps(180e3, sinr) <= per_rrb_rate_bps(180e3, sinr)

    def test_invalid_bandwidth(self):
        with pytest.raises(ConfigurationError):
            mcs_rate_bps(0.0, 1.0)


class TestMcsScenarioIntegration:
    def test_config_selects_rate_model(self):
        assert ScenarioConfig.paper().rate_model == "shannon"
        mcs_config = ScenarioConfig.paper(rate_model="mcs")
        assert mcs_config.rate_model_fn() is mcs_rate_bps

    def test_unknown_rate_model_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig.paper(rate_model="magic")

    def test_mcs_links_demand_more_rrbs(self):
        shannon = build_scenario(ScenarioConfig.paper(), 80, 3)
        quantized = build_scenario(
            ScenarioConfig.paper(rate_model="mcs"), 80, 3
        )
        for link in shannon.radio_map:
            counterpart = quantized.radio_map.link(link.ue_id, link.bs_id)
            assert counterpart.rrbs_required >= link.rrbs_required

    def test_dmra_ordering_survives_quantization(self):
        """The headline DMRA > DCSP ordering is not an artifact of the
        Shannon bound."""
        from repro.baselines.dcsp import DCSPAllocator
        from repro.core.dmra import DMRAAllocator
        from repro.sim.runner import run_allocation

        scenario = build_scenario(
            ScenarioConfig.paper(rate_model="mcs"), 500, 2
        )
        dmra = run_allocation(
            scenario, DMRAAllocator(pricing=scenario.pricing)
        ).metrics.total_profit
        dcsp = run_allocation(scenario, DCSPAllocator()).metrics.total_profit
        assert dmra > dcsp
