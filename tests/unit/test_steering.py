"""Unit tests for the congestion-steered DMRA variant."""

import pytest

from repro.core.dmra import DMRAAllocator
from repro.core.steering import (
    CongestionSteeredAllocator,
    CongestionSteeredPolicy,
)
from repro.errors import ConfigurationError
from repro.sim.config import ScenarioConfig
from repro.sim.runner import run_allocation
from repro.sim.scenario import build_scenario


class TestCongestionSteeredPolicy:
    def test_beta_zero_equals_plain_dmra(self):
        """beta = 0 must reproduce DMRA exactly, association for
        association."""
        scenario = build_scenario(ScenarioConfig.paper(), 500, 1)
        plain = DMRAAllocator(pricing=scenario.pricing, rho=7.0).allocate(
            scenario.network, scenario.radio_map
        )
        steered = CongestionSteeredAllocator(
            pricing=scenario.pricing, rho=7.0, beta=0.0
        ).allocate(scenario.network, scenario.radio_map)
        assert sorted(plain.association_pairs()) == sorted(
            steered.association_pairs()
        )

    def test_result_is_valid(self):
        scenario = build_scenario(ScenarioConfig.paper(), 800, 2)
        assignment = CongestionSteeredAllocator(
            pricing=scenario.pricing, beta=1.5
        ).allocate(scenario.network, scenario.radio_map)
        assignment.validate(scenario.network, scenario.radio_map)

    def test_negative_beta_rejected(self):
        with pytest.raises(ConfigurationError):
            CongestionSteeredAllocator(beta=-0.1)
        from repro.econ.pricing import PaperPricing

        with pytest.raises(ConfigurationError):
            CongestionSteeredPolicy(pricing=PaperPricing(), beta=-1.0)

    def test_steering_reduces_forwarding_under_overload(self):
        """The extension's claim: utilization-scaled prices absorb more
        load at the edge than price-only DMRA (rho = 0)."""
        config = ScenarioConfig.paper()
        plain_fwd = 0.0
        steered_fwd = 0.0
        for seed in range(3):
            scenario = build_scenario(config, 1000, seed)
            plain = run_allocation(
                scenario,
                CongestionSteeredAllocator(
                    pricing=scenario.pricing, beta=0.0
                ),
            )
            steered = run_allocation(
                scenario,
                CongestionSteeredAllocator(
                    pricing=scenario.pricing, beta=2.0
                ),
            )
            plain_fwd += plain.metrics.forwarded_traffic_bps
            steered_fwd += steered.metrics.forwarded_traffic_bps
        assert steered_fwd < plain_fwd

    def test_steering_does_not_hurt_profit(self):
        config = ScenarioConfig.paper()
        plain_total = 0.0
        steered_total = 0.0
        for seed in range(3):
            scenario = build_scenario(config, 1000, seed)
            plain_total += run_allocation(
                scenario,
                CongestionSteeredAllocator(pricing=scenario.pricing, beta=0.0),
            ).metrics.total_profit
            steered_total += run_allocation(
                scenario,
                CongestionSteeredAllocator(pricing=scenario.pricing, beta=2.0),
            ).metrics.total_profit
        assert steered_total >= plain_total * 0.995

    def test_deterministic(self):
        scenario = build_scenario(ScenarioConfig.paper(), 400, 5)
        allocator = CongestionSteeredAllocator(
            pricing=scenario.pricing, beta=1.0
        )
        a = allocator.allocate(scenario.network, scenario.radio_map)
        b = allocator.allocate(scenario.network, scenario.radio_map)
        assert a.association_pairs() == b.association_pairs()
