"""Unit tests for the fixed-bucket histogram primitive."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    DEFAULT_DEPTH_BOUNDS,
    DEFAULT_LATENCY_BOUNDS,
    Histogram,
    log_bounds,
)


class TestLogBounds:
    def test_geometric_ladder(self):
        bounds = log_bounds(1.0, 8.0, growth=2.0)
        assert bounds == (1.0, 2.0, 4.0, 8.0)

    def test_covers_hi(self):
        bounds = log_bounds(1.0, 5.0, growth=2.0)
        assert bounds[-1] >= 5.0

    def test_defaults_are_sorted_and_strict(self):
        for bounds in (DEFAULT_LATENCY_BOUNDS, DEFAULT_DEPTH_BOUNDS):
            assert list(bounds) == sorted(bounds)
            assert len(set(bounds)) == len(bounds)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            log_bounds(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            log_bounds(1.0, 0.5)
        with pytest.raises(ConfigurationError):
            log_bounds(1.0, 2.0, growth=1.0)


class TestObserve:
    def test_counts_land_in_le_buckets(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            hist.observe(value)
        # le-semantics: value <= bound lands in that bucket.
        assert hist.counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(106.0)

    def test_overflow_bucket_is_plus_inf(self):
        hist = Histogram(bounds=(1.0,))
        hist.observe(99.0)
        assert hist.counts == [0, 1]
        cumulative = hist.cumulative()
        assert cumulative[-1] == (math.inf, 1)

    def test_cumulative_is_monotone_and_ends_at_count(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0, 8.0))
        for value in (0.1, 0.2, 3.0, 9.0, 5.0, 1.5):
            hist.observe(value)
        running = [total for _le, total in hist.cumulative()]
        assert running == sorted(running)
        assert running[-1] == hist.count

    def test_rejects_empty_or_unsorted_bounds(self):
        with pytest.raises(ConfigurationError):
            Histogram(bounds=())
        with pytest.raises(ConfigurationError):
            Histogram(bounds=(2.0, 1.0))


class TestMerge:
    def test_merge_adds_counts_and_sum(self):
        a = Histogram(bounds=(1.0, 2.0))
        b = Histogram(bounds=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(10.0)
        a.merge(b)
        assert a.count == 3
        assert a.counts == [1, 1, 1]
        assert a.sum == pytest.approx(12.0)

    def test_merge_rejects_mismatched_bounds(self):
        a = Histogram(bounds=(1.0, 2.0))
        b = Histogram(bounds=(1.0, 4.0))
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_snapshot_is_independent(self):
        a = Histogram(bounds=(1.0,))
        a.observe(0.5)
        copy = a.snapshot()
        a.observe(0.5)
        assert copy.count == 1
        assert a.count == 2
        assert copy == Histogram.from_payload(copy.to_payload())


class TestPayloadRoundTrip:
    def test_round_trip_is_exact(self):
        hist = Histogram(bounds=DEFAULT_LATENCY_BOUNDS)
        for value in (1e-7, 3e-4, 0.02, 1.0, 50.0):
            hist.observe(value)
        payload = hist.to_payload()
        back = Histogram.from_payload(payload)
        assert back == hist
        assert back.to_payload() == payload

    def test_malformed_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram.from_payload({"bounds": [1.0]})  # missing fields
        with pytest.raises(ConfigurationError):
            Histogram.from_payload({
                "bounds": [1.0], "counts": [1], "sum": 0.0, "count": 1,
            })  # counts must have len(bounds) + 1 entries
