"""Unit tests for the crossover finder."""

import pytest

from repro.analysis.crossover import find_crossover
from repro.baselines.nonco import NonCoAllocator
from repro.baselines.random_alloc import RandomAllocator
from repro.core.dmra import DMRAAllocator
from repro.errors import ConfigurationError
from repro.sim.config import ScenarioConfig

CONFIG = ScenarioConfig.paper()


def dmra(scenario):
    return DMRAAllocator(pricing=scenario.pricing)


def nonco(scenario):
    return NonCoAllocator()


class TestFindCrossover:
    def test_dmra_nonco_crossover_is_past_paper_range(self):
        """The load where NonCo catches DMRA sits beyond the paper's
        plotted 400-1000 range — EXPERIMENTS.md deviation 2, measured."""
        result = find_crossover(
            CONFIG, dmra, nonco, seed=0,
            lo_ue_count=600, hi_ue_count=1600, tolerance=50,
        )
        assert result.found
        assert result.lower_difference > 0  # DMRA ahead at 600
        assert result.upper_difference < 0  # NonCo ahead at 1600
        assert 1000 <= result.midpoint <= 1300

    def test_no_crossover_reported_when_one_side_dominates(self):
        """DMRA beats the random floor across the whole bracket."""
        result = find_crossover(
            CONFIG,
            dmra,
            lambda s: RandomAllocator(seed=s.seed),
            seed=1,
            lo_ue_count=200,
            hi_ue_count=800,
            tolerance=100,
        )
        assert not result.found
        assert result.lower_difference > 0
        assert result.upper_difference > 0

    def test_bracket_width_respects_tolerance(self):
        result = find_crossover(
            CONFIG, dmra, nonco, seed=0,
            lo_ue_count=900, hi_ue_count=1300, tolerance=30,
        )
        if result.found:
            assert result.upper_ue_count - result.lower_ue_count <= 30

    def test_self_comparison_hits_zero_at_bracket_edge(self):
        result = find_crossover(
            CONFIG, dmra, dmra, seed=2,
            lo_ue_count=100, hi_ue_count=300, tolerance=50,
        )
        # Identical allocators difference is exactly zero at the first
        # probe, reported as an exact crossover.
        assert result.found
        assert result.lower_ue_count == result.upper_ue_count

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            find_crossover(
                CONFIG, dmra, nonco, seed=0,
                lo_ue_count=0, hi_ue_count=100,
            )
        with pytest.raises(ConfigurationError):
            find_crossover(
                CONFIG, dmra, nonco, seed=0,
                lo_ue_count=500, hi_ue_count=400,
            )
        with pytest.raises(ConfigurationError):
            find_crossover(
                CONFIG, dmra, nonco, seed=0,
                lo_ue_count=100, hi_ue_count=200, tolerance=0,
            )
