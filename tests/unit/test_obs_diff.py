"""Unit tests for metric diffing and the regression verdict."""

import pytest

from repro.obs import (
    DiffTolerances,
    MetricFamily,
    MetricSample,
    MetricsDocument,
    build_manifest,
    diff_documents,
    render_diff_report,
)
from repro.sim.config import ScenarioConfig

CONFIG = ScenarioConfig.paper()


def manifest(config=CONFIG, seeds=(1,)):
    """A pinned manifest for alignment tests."""
    return build_manifest(
        config=config, seeds=list(seeds), command="run",
        clock=lambda: 0.0, host=lambda: {},
    )


def document(values: dict, manifest=None) -> MetricsDocument:
    """A document of scalar gauge families from a name->value dict."""
    return MetricsDocument(
        families=tuple(
            MetricFamily(
                name=name, kind="gauge", help="",
                samples=(MetricSample.of(value),),
            )
            for name, value in values.items()
        ),
        manifest=manifest,
    )


class TestTolerances:
    def test_abs_tolerance(self):
        tol = DiffTolerances(abs_tol=0.1)
        assert tol.within("f", 1.0, 1.05)
        assert not tol.within("f", 1.0, 1.2)

    def test_rel_tolerance(self):
        tol = DiffTolerances(abs_tol=0.0, rel_tol=0.1)
        assert tol.within("f", 100.0, 109.0)
        assert not tol.within("f", 100.0, 120.0)

    def test_per_family_override_wins(self):
        tol = DiffTolerances(
            abs_tol=0.0, per_family={"loose": {"abs": 10.0}}
        )
        assert tol.within("loose", 0.0, 5.0)
        assert not tol.within("strict", 0.0, 5.0)

    def test_timing_prefixes_ignored_by_default(self):
        tol = DiffTolerances()
        assert tol.ignored("dmra_timer_seconds_total")
        assert tol.ignored("dmra_wall_seconds")
        assert not tol.ignored("dmra_total_profit")


class TestDiffDocuments:
    def test_identical_documents_ok(self):
        a = document({"dmra_total_profit": 5.0}, manifest())
        b = document({"dmra_total_profit": 5.0}, manifest())
        report = diff_documents(a, b)
        assert report.ok
        assert report.comparable
        assert report.families_compared == 1
        assert not report.regressions and not report.changes

    def test_value_drift_is_a_regression(self):
        a = document({"dmra_total_profit": 5.0}, manifest())
        b = document({"dmra_total_profit": 4.0}, manifest())
        report = diff_documents(a, b)
        assert not report.ok
        (delta,) = report.regressions
        assert delta.family == "dmra_total_profit"
        assert delta.delta == pytest.approx(-1.0)

    def test_drift_within_tolerance_passes(self):
        a = document({"dmra_total_profit": 5.0}, manifest())
        b = document({"dmra_total_profit": 4.9}, manifest())
        report = diff_documents(a, b, DiffTolerances(abs_tol=0.2))
        assert report.ok

    def test_timing_drift_never_gates(self):
        a = document(
            {"dmra_wall_seconds": 1.0, "dmra_total_profit": 5.0},
            manifest(),
        )
        b = document(
            {"dmra_wall_seconds": 9.0, "dmra_total_profit": 5.0},
            manifest(),
        )
        report = diff_documents(a, b)
        assert report.ok
        assert len(report.ignored_changes) == 1

    def test_family_only_in_one_side_gates(self):
        a = document({"dmra_total_profit": 5.0}, manifest())
        b = document(
            {"dmra_total_profit": 5.0, "dmra_extra": 1.0}, manifest()
        )
        report = diff_documents(a, b)
        assert not report.ok
        (delta,) = report.regressions
        assert delta.baseline is None
        assert "only in candidate" in delta.describe()

    def test_misaligned_manifests_gate_even_with_equal_values(self):
        a = document({"dmra_total_profit": 5.0}, manifest())
        b = document(
            {"dmra_total_profit": 5.0},
            manifest(config=CONFIG.with_(rho=12.0)),
        )
        report = diff_documents(a, b)
        assert not report.comparable
        assert not report.ok
        assert any(
            d.family == "manifest_alignment" for d in report.regressions
        )
        assert any("rho" in note for note in report.manifest_notes)

    def test_exploratory_mode_reports_changes_not_regressions(self):
        a = document({"dmra_total_profit": 5.0}, manifest())
        b = document(
            {"dmra_total_profit": 7.0},
            manifest(config=CONFIG.with_(rho=12.0)),
        )
        report = diff_documents(a, b, require_comparable=False)
        assert report.ok
        (delta,) = report.changes
        assert delta.delta == pytest.approx(2.0)

    def test_aligned_runs_gate_even_in_exploratory_mode(self):
        # require_comparable=False relaxes *alignment*, not correctness:
        # same (config, seed) must still reproduce the same values.
        a = document({"dmra_total_profit": 5.0}, manifest())
        b = document({"dmra_total_profit": 7.0}, manifest())
        report = diff_documents(a, b, require_comparable=False)
        assert not report.ok

    def test_missing_manifests_block_comparability(self):
        a = document({"dmra_total_profit": 5.0})
        b = document({"dmra_total_profit": 5.0})
        report = diff_documents(a, b)
        assert not report.comparable
        assert not report.ok


class TestRenderReport:
    def test_ok_report_renders_verdict(self):
        a = document({"dmra_total_profit": 5.0}, manifest())
        text = render_diff_report(diff_documents(a, a), "a.json", "b.json")
        assert "a.json vs b.json" in text
        assert "manifest: aligned" in text
        assert "verdict: OK" in text

    def test_regression_report_lists_deltas(self):
        a = document({"dmra_total_profit": 5.0}, manifest())
        b = document({"dmra_total_profit": 4.0}, manifest())
        text = render_diff_report(diff_documents(a, b))
        assert "REGRESSIONS (1):" in text
        assert "! dmra_total_profit: 5 -> 4 (delta -1)" in text
        assert "verdict: REGRESSION" in text

    def test_misalignment_rendered_with_notes(self):
        a = document({}, manifest())
        b = document({}, manifest(config=CONFIG.with_(rho=12.0)))
        text = render_diff_report(diff_documents(a, b))
        assert "runs are not comparable" in text
        assert "rho" in text
