"""Coverage for the policy-factory hooks of the dynamic simulations."""

from repro.baselines.dcsp import DCSPPolicy
from repro.dynamics.failures import inject_bs_failures
from repro.dynamics.mobility import RandomWalk, run_mobility
from repro.sim.config import ScenarioConfig

CONFIG = ScenarioConfig.paper()


class TestMobilityPolicyFactory:
    def test_dcsp_policy_drives_the_repair(self):
        outcome = run_mobility(
            CONFIG,
            ue_count=150,
            epochs=3,
            epoch_duration_s=30.0,
            seed=1,
            mobility=RandomWalk(speed_mps=10.0),
            policy_factory=lambda scenario: DCSPPolicy(),
        )
        assert outcome.epoch_count == 4
        assert all(r.total_profit > 0 for r in outcome.records)

    def test_policy_changes_the_outcome(self):
        kwargs = dict(
            config=CONFIG,
            ue_count=150,
            epochs=3,
            epoch_duration_s=30.0,
            seed=1,
            mobility=RandomWalk(speed_mps=10.0),
            sticky=False,  # re-optimize so the policy acts every epoch
        )
        dmra_outcome = run_mobility(**kwargs)
        dcsp_outcome = run_mobility(
            policy_factory=lambda scenario: DCSPPolicy(), **kwargs
        )
        # DCSP ignores prices, so its repair earns less.
        assert dmra_outcome.mean_profit > dcsp_outcome.mean_profit


class TestFailurePolicyFactory:
    def test_dcsp_policy_repairs_outage(self):
        outcome = inject_bs_failures(
            CONFIG,
            ue_count=400,
            failed_bs_ids=[0, 1],
            seed=2,
            policy_factory=lambda scenario: DCSPPolicy(),
        )
        assert outcome.recovered_ues + outcome.dropped_to_cloud == (
            outcome.orphaned_ues
        )
        assert outcome.profit_after > 0
