"""Unit tests for the interference-floor configuration knob."""

import pytest

from repro.core.dmra import DMRAAllocator
from repro.radio.interference import ConstantInterference, NoInterference
from repro.sim.config import ScenarioConfig
from repro.sim.runner import run_allocation
from repro.sim.scenario import build_scenario


class TestInterferenceKnob:
    def test_default_is_noise_limited(self):
        budget = ScenarioConfig.paper().link_budget()
        assert isinstance(budget.interference, NoInterference)
        assert budget.noise_dbm == -170.0

    def test_floor_selects_constant_interference(self):
        config = ScenarioConfig.paper(interference_floor_dbm=-150.0)
        budget = config.link_budget()
        assert isinstance(budget.interference, ConstantInterference)
        assert budget.interference.floor_dbm == -150.0

    def test_interference_lowers_sinr_and_raises_rrb_demand(self):
        quiet = build_scenario(ScenarioConfig.paper(), 120, 3)
        noisy = build_scenario(
            ScenarioConfig.paper(interference_floor_dbm=-150.0), 120, 3
        )
        for link in quiet.radio_map:
            counterpart = noisy.radio_map.link(link.ue_id, link.bs_id)
            assert counterpart.sinr_linear < link.sinr_linear
            assert counterpart.rrbs_required >= link.rrbs_required

    def test_interference_shrinks_edge_capacity(self):
        """With a -150 dBm floor the radio pool holds fewer UEs, so the
        same overload produces more cloud forwarding."""
        quiet_cfg = ScenarioConfig.paper()
        noisy_cfg = ScenarioConfig.paper(interference_floor_dbm=-150.0)
        quiet_cloud = 0
        noisy_cloud = 0
        for seed in range(2):
            quiet = build_scenario(quiet_cfg, 900, seed)
            noisy = build_scenario(noisy_cfg, 900, seed)
            quiet_cloud += run_allocation(
                quiet, DMRAAllocator(pricing=quiet.pricing)
            ).metrics.cloud_forwarded
            noisy_cloud += run_allocation(
                noisy, DMRAAllocator(pricing=noisy.pricing)
            ).metrics.cloud_forwarded
        assert noisy_cloud > quiet_cloud

    def test_dmra_ordering_survives_interference(self):
        from repro.baselines.dcsp import DCSPAllocator

        config = ScenarioConfig.paper(interference_floor_dbm=-150.0)
        scenario = build_scenario(config, 500, 1)
        dmra = run_allocation(
            scenario, DMRAAllocator(pricing=scenario.pricing)
        ).metrics.total_profit
        dcsp = run_allocation(scenario, DCSPAllocator()).metrics.total_profit
        assert dmra > dcsp
