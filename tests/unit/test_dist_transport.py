"""Unit tests for the distributed deployment's plumbing.

Three layers, bottom up: the wire codec (:mod:`repro.core.messages`
``to_wire``/``from_wire`` through the byte framing), the three
transports behind one :class:`~repro.dist.transport.Channel` interface
(an echo round-trip each, including the forked ``mp`` and ``tcp``
paths), and the sender-side fault injector
(:class:`~repro.dist.faults.FaultyChannel`) whose determinism and
count conservation the supervisor's barrier protocol depends on.
"""

import pytest

from repro.core.messages import (
    AssociationGrant,
    CloudFallbackNotice,
    ResourceBroadcast,
    ServiceRequest,
    from_wire,
    to_wire,
)
from repro.dist.faults import (
    FAULT_SCENARIOS,
    CrashEvent,
    FaultPlan,
    FaultyChannel,
    scenario_plan,
)
from repro.dist.transport import (
    TRANSPORTS,
    decode_frame,
    encode_frame,
    make_transport,
)
from repro.errors import ConfigurationError

# ----------------------------------------------------------------------
# Wire codec
# ----------------------------------------------------------------------

WIRE_MESSAGES = [
    ServiceRequest(
        ue_id=7,
        sp_id=2,
        target_bs_id=11,
        service_id=1,
        cru_demand=4,
        rrbs_required=3,
        coverage_count=5,
    ),
    AssociationGrant(
        bs_id=11, ue_id=7, service_id=1, crus=4, rrbs=3, epoch=2
    ),
    ResourceBroadcast(
        bs_id=11,
        remaining_crus={0: 16, 1: 20},
        remaining_rrbs=7,
        seq=9,
        epoch=2,
    ),
    CloudFallbackNotice(ue_id=7, sp_id=2),
]


class TestWireCodec:
    @pytest.mark.parametrize(
        "message", WIRE_MESSAGES, ids=lambda m: type(m).__name__
    )
    def test_round_trips_through_json_bytes(self, message):
        """Every message survives to_wire -> JSON bytes -> from_wire —
        including the int keys of a broadcast's CRU map, which JSON
        stringifies."""
        restored = from_wire(decode_frame(encode_frame(to_wire(message))))
        assert restored == message

    def test_unknown_wire_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown wire"):
            from_wire({"k": "gossip"})

    def test_unencodable_message_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot encode"):
            to_wire(object())

    def test_grant_epoch_defaults_for_old_payloads(self):
        payload = to_wire(AssociationGrant(0, 1, 0, 4, 2))
        del payload["epoch"]
        assert from_wire(payload).epoch == 0


# ----------------------------------------------------------------------
# Transports
# ----------------------------------------------------------------------


def _echo_body(channel):
    """Node body: bounce every frame back to ``sup`` until told to stop."""
    while True:
        frame = channel.recv(timeout=30)
        if frame is None or frame.get("t") == "stop":
            break
        channel.send("sup", {"echo": frame, "from": channel.name})
    channel.close()


class TestTransports:
    @pytest.mark.parametrize("kind", TRANSPORTS)
    def test_echo_round_trip(self, kind):
        """A frame to a spawned node (thread or forked process) comes
        back intact, and ``send`` reports the encoded byte length."""
        transport = make_transport(kind, ("sup", "node"))
        sup = transport.channel("sup")
        try:
            transport.spawn("node", _echo_body)
            frame = {"t": "msg", "payload": [1, 2, 3]}
            nbytes = sup.send("node", frame)
            assert nbytes == len(encode_frame(frame))
            reply = sup.recv(timeout=30)
            assert reply == {"echo": frame, "from": "node"}
            sup.send("node", {"t": "stop"})
        finally:
            sup.close()
            transport.shutdown()

    @pytest.mark.parametrize("kind", TRANSPORTS)
    def test_per_sender_fifo(self, kind):
        """Frames from one sender arrive in send order — the only
        ordering guarantee the round protocol relies on."""
        transport = make_transport(kind, ("sup", "node"))
        sup = transport.channel("sup")
        try:
            transport.spawn("node", _echo_body)
            for i in range(10):
                sup.send("node", {"t": "msg", "i": i})
            got = [sup.recv(timeout=30)["echo"]["i"] for _ in range(10)]
            assert got == list(range(10))
            sup.send("node", {"t": "stop"})
        finally:
            sup.close()
            transport.shutdown()

    @pytest.mark.parametrize("kind", ["inproc", "mp"])
    def test_unknown_destination_rejected(self, kind):
        transport = make_transport(kind, ("sup",))
        sup = transport.channel("sup")
        try:
            with pytest.raises(ConfigurationError, match="unknown node"):
                sup.send("nope", {"t": "msg"})
        finally:
            sup.close()
            transport.shutdown()

    def test_recv_timeout_returns_none(self):
        transport = make_transport("inproc", ("sup",))
        sup = transport.channel("sup")
        try:
            assert sup.recv(timeout=0.01) is None
        finally:
            sup.close()
            transport.shutdown()

    def test_unknown_transport_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown transport"):
            make_transport("carrier-pigeon", ("sup",))

    def test_duplicate_node_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            make_transport("inproc", ("sup", "sup"))


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------


class _StubChannel:
    """Records sends; byte length mimics the real Channel accounting."""

    def __init__(self):
        self.sent = []

    def send(self, dst, frame):
        self.sent.append((dst, frame))
        return len(encode_frame(frame))


def data_frame(kind="req", i=0):
    return {"t": "msg", "src": "ue:0", "msg": {"k": kind, "i": i}}


class TestFaultPlan:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(drop_prob=1.5),
            dict(drop_prob=-0.1),
            dict(delay_prob=1.0),
            dict(delay_rounds=0),
            dict(horizon_rounds=-1),
        ],
    )
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultPlan(**kwargs)

    def test_last_crash_clear_round(self):
        plan = FaultPlan(
            crashes=(
                CrashEvent(bs_id=0, at_round=3, down_rounds=2),
                CrashEvent(bs_id=1, at_round=5, down_rounds=1),
            )
        )
        assert plan.last_crash_clear_round == 6
        assert FaultPlan().last_crash_clear_round == 0

    def test_named_scenarios(self):
        assert scenario_plan("none") is None
        for name in FAULT_SCENARIOS[1:]:
            plan = scenario_plan(name, seed=3)
            assert isinstance(plan, FaultPlan)
        assert scenario_plan("stale").kinds == ("bcast",)
        assert scenario_plan("crash", crash_bs_id=4).crashes[0].bs_id == 4
        with pytest.raises(ConfigurationError, match="unknown fault"):
            scenario_plan("meteor")


class TestFaultyChannel:
    def test_no_plan_is_transparent(self):
        stub = _StubChannel()
        channel = FaultyChannel(stub, None, "ue:0")
        records = channel.send_data("bs:0", data_frame(), round_no=1)
        assert len(records) == 1
        dst, kind, nbytes = records[0]
        assert (dst, kind) == ("bs:0", "req")
        assert nbytes == len(encode_frame(data_frame()))
        assert channel.stats.as_dict() == {
            "dropped": 0, "delayed": 0, "released": 0,
        }

    def test_counts_are_conserved(self):
        """sent-now + dropped + held == offered, always — the invariant
        the supervisor's count-based barrier rests on."""
        stub = _StubChannel()
        plan = FaultPlan(seed=5, drop_prob=0.3, delay_prob=0.3)
        channel = FaultyChannel(stub, plan, "ue:0")
        sent_now = 0
        for i in range(200):
            sent_now += len(channel.send_data("bs:0", data_frame(i=i), 1))
        stats = channel.stats
        assert stats.dropped > 0 and stats.delayed > 0
        assert sent_now + stats.dropped + channel.held_count == 200
        assert len(stub.sent) == sent_now

    def test_deterministic_per_node_name(self):
        """Same plan + same node name replays the identical fault
        sequence (the cross-transport reproducibility guarantee)."""
        plan = FaultPlan(seed=9, drop_prob=0.4, delay_prob=0.2)
        outcomes = []
        for _ in range(2):
            stub = _StubChannel()
            channel = FaultyChannel(stub, plan, "ue:1")
            pattern = [
                len(channel.send_data("bs:0", data_frame(i=i), 1))
                for i in range(50)
            ]
            outcomes.append((pattern, channel.stats.as_dict()))
        assert outcomes[0] == outcomes[1]

    def test_delayed_frames_release_after_delay_rounds(self):
        stub = _StubChannel()
        plan = FaultPlan(seed=0, delay_prob=0.99, delay_rounds=2)
        channel = FaultyChannel(stub, plan, "ue:0")
        for i in range(20):
            channel.send_data("bs:0", data_frame(i=i), round_no=1)
        held = channel.held_count
        assert held > 0
        assert channel.flush(round_no=2) == []  # not due yet
        records = channel.flush(round_no=3)  # 1 + delay_rounds
        assert len(records) == held
        assert channel.held_count == 0
        assert channel.stats.released == channel.stats.delayed

    def test_kinds_filter_limits_faults_to_matching_frames(self):
        stub = _StubChannel()
        plan = FaultPlan(seed=0, drop_prob=0.9, delay_prob=0.09, kinds=("bcast",))
        channel = FaultyChannel(stub, plan, "bs:0")
        for i in range(30):
            records = channel.send_data("sp:0", data_frame("req", i), 1)
            assert len(records) == 1  # "req" is never eligible
        assert channel.stats.as_dict() == {
            "dropped": 0, "delayed": 0, "released": 0,
        }
        faulted = sum(
            not channel.send_data("ue:0", data_frame("bcast", i), 1)
            for i in range(30)
        )
        assert faulted > 0

    def test_horizon_silences_faults_in_late_rounds(self):
        stub = _StubChannel()
        plan = FaultPlan(seed=0, drop_prob=0.9, horizon_rounds=4)
        channel = FaultyChannel(stub, plan, "ue:0")
        for i in range(30):
            records = channel.send_data("bs:0", data_frame(i=i), round_no=5)
            assert len(records) == 1
        assert channel.stats.dropped == 0
