"""Unit tests for the event queue, arrival processes, and time series."""

import numpy as np
import pytest

from repro.dynamics.arrivals import (
    BatchArrivals,
    DeterministicHolding,
    ExponentialHolding,
    PoissonArrivals,
)
from repro.dynamics.events import Event, EventKind, EventQueue
from repro.dynamics.timeseries import StepSeries
from repro.errors import ConfigurationError


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(Event(5.0, EventKind.ARRIVAL, 1))
        queue.push(Event(2.0, EventKind.DEPARTURE, 2))
        queue.push(Event(8.0, EventKind.ARRIVAL, 3))
        assert queue.pop().time_s == 2.0
        assert queue.pop().time_s == 5.0
        assert queue.pop().time_s == 8.0

    def test_ties_pop_in_insertion_order(self):
        queue = EventQueue()
        for ue_id in (7, 3, 9):
            queue.push(Event(1.0, EventKind.ARRIVAL, ue_id))
        assert [queue.pop().ue_id for _ in range(3)] == [7, 3, 9]

    def test_peek_does_not_remove(self):
        queue = EventQueue()
        queue.push(Event(4.0, EventKind.ARRIVAL, 0))
        assert queue.peek_time() == 4.0
        assert len(queue) == 1

    def test_empty_behaviour(self):
        queue = EventQueue()
        assert not queue
        assert queue.peek_time() is None
        with pytest.raises(ConfigurationError):
            queue.pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            Event(-1.0, EventKind.ARRIVAL, 0)


class TestArrivalProcesses:
    def test_poisson_rate_roughly_respected(self):
        times = PoissonArrivals(rate_per_s=5.0).arrival_times(
            1000.0, np.random.default_rng(1)
        )
        assert 4200 <= len(times) <= 5800  # ~5000 expected
        assert all(0 <= t < 1000.0 for t in times)
        assert times == sorted(times)

    def test_poisson_seed_determinism(self):
        a = PoissonArrivals(2.0).arrival_times(100.0, np.random.default_rng(3))
        b = PoissonArrivals(2.0).arrival_times(100.0, np.random.default_rng(3))
        assert a == b

    def test_poisson_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(0.0)
        with pytest.raises(ConfigurationError):
            PoissonArrivals(1.0).arrival_times(0.0, np.random.default_rng(0))

    def test_batch_arrivals_structure(self):
        times = BatchArrivals(interval_s=10.0, batch_size=3).arrival_times(
            35.0, np.random.default_rng(0)
        )
        assert times == [10.0, 10.0, 10.0, 20.0, 20.0, 20.0, 30.0, 30.0, 30.0]

    def test_batch_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            BatchArrivals(interval_s=0.0, batch_size=1)
        with pytest.raises(ConfigurationError):
            BatchArrivals(interval_s=1.0, batch_size=0)


class TestHoldingTimes:
    def test_exponential_mean(self):
        rng = np.random.default_rng(0)
        model = ExponentialHolding(mean_s=60.0)
        draws = [model.holding_time_s(rng) for _ in range(5000)]
        assert sum(draws) / len(draws) == pytest.approx(60.0, rel=0.1)
        assert all(d >= 0 for d in draws)

    def test_deterministic_constant(self):
        model = DeterministicHolding(duration_s=42.0)
        rng = np.random.default_rng(0)
        assert model.holding_time_s(rng) == 42.0
        assert model.holding_time_s(rng) == 42.0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ExponentialHolding(0.0)
        with pytest.raises(ConfigurationError):
            DeterministicHolding(0.0)


class TestStepSeries:
    def test_time_average_piecewise(self):
        series = StepSeries("x")
        series.record(0.0, 10.0)
        series.record(4.0, 20.0)  # 10 for 4 s, then 20 for 6 s
        assert series.time_average(10.0) == pytest.approx(
            (10 * 4 + 20 * 6) / 10
        )

    def test_same_instant_overwrites(self):
        series = StepSeries("x")
        series.record(1.0, 5.0)
        series.record(1.0, 9.0)
        assert len(series) == 1
        assert series.last_value == 9.0

    def test_backwards_time_rejected(self):
        series = StepSeries("x")
        series.record(2.0, 1.0)
        with pytest.raises(ConfigurationError):
            series.record(1.0, 1.0)

    def test_peak_and_last(self):
        series = StepSeries("x")
        for t, v in ((0.0, 1.0), (1.0, 7.0), (2.0, 3.0)):
            series.record(t, v)
        assert series.peak == 7.0
        assert series.last_value == 3.0
        assert series.samples == ((0.0, 1.0), (1.0, 7.0), (2.0, 3.0))

    def test_empty_series_errors(self):
        series = StepSeries("x")
        with pytest.raises(ConfigurationError):
            series.last_value
        with pytest.raises(ConfigurationError):
            series.time_average(1.0)

    def test_average_until_before_first_sample_rejected(self):
        series = StepSeries("x")
        series.record(5.0, 1.0)
        with pytest.raises(ConfigurationError):
            series.time_average(4.0)

    def test_average_at_first_sample_is_value(self):
        series = StepSeries("x")
        series.record(5.0, 3.5)
        assert series.time_average(5.0) == 3.5


class TestStepSeriesConstruction:
    def test_mismatched_lengths_rejected(self):
        # Regression: the dataclass constructor used to accept a series
        # with more timestamps than values, and time_average silently
        # truncated via zip.
        with pytest.raises(ConfigurationError):
            StepSeries("x", [0.0, 1.0], [1.0])

    def test_non_increasing_times_rejected(self):
        with pytest.raises(ConfigurationError):
            StepSeries("x", [0.0, 2.0, 1.0], [1.0, 2.0, 3.0])
        with pytest.raises(ConfigurationError):
            StepSeries("x", [0.0, 0.0], [1.0, 2.0])

    def test_valid_prebuilt_series_accepted(self):
        series = StepSeries("x", [0.0, 2.0], [1.0, 3.0])
        assert series.time_average(4.0) == pytest.approx(2.0)


class TestTimeAverageEdgeCases:
    def test_until_strictly_between_last_two_samples(self):
        series = StepSeries("x")
        series.record(0.0, 2.0)
        series.record(10.0, 100.0)
        # until=5 lies strictly between the samples: only the first
        # segment (clipped) contributes.
        assert series.time_average(5.0) == pytest.approx(2.0)

    def test_until_equal_to_interior_timestamp(self):
        series = StepSeries("x")
        series.record(0.0, 1.0)
        series.record(2.0, 5.0)
        series.record(4.0, 9.0)
        # Stop exactly at an interior sample: the value recorded there
        # holds for zero time and must not contribute.
        assert series.time_average(2.0) == pytest.approx(1.0)

    def test_constant_series_average_is_that_constant(self):
        series = StepSeries("x")
        for t in (0.0, 1.5, 2.0, 7.25):
            series.record(t, 42.0)
        for until in (0.0, 1.5, 3.0, 7.25, 11.0):
            assert series.time_average(until) == pytest.approx(42.0)
