"""Unit tests for demand-aware service placement."""

import pytest

from repro.compute.placement_opt import (
    empirical_popularity,
    plan_hosting,
    rehost_scenario,
)
from repro.core.dmra import DMRAAllocator
from repro.errors import ConfigurationError
from repro.sim.config import ScenarioConfig
from repro.sim.runner import run_allocation
from repro.sim.scenario import build_scenario


class TestEmpiricalPopularity:
    def test_shares_sum_to_one(self, small_scenario):
        shares = empirical_popularity(small_scenario.network)
        assert len(shares) == 6
        assert sum(shares) == pytest.approx(1.0)
        assert all(s >= 0 for s in shares)

    def test_skewed_population_detected(self):
        config = ScenarioConfig.paper(
            service_popularity=(10, 1, 1, 1, 1, 1)
        )
        scenario = build_scenario(config, 600, 1)
        shares = empirical_popularity(scenario.network)
        assert shares[0] == max(shares)
        assert shares[0] > 0.4


class TestPlanHosting:
    def test_every_service_covered_somewhere(self):
        plan = plan_hosting(25, 3, weights=(16, 8, 4, 2, 1, 1))
        hosted_anywhere = set().union(*plan)
        assert hosted_anywhere == set(range(6))

    def test_slots_per_bs_respected(self):
        plan = plan_hosting(25, 3, weights=(16, 8, 4, 2, 1, 1))
        assert all(len(h) == 3 for h in plan)

    def test_popular_service_more_replicated(self):
        plan = plan_hosting(25, 3, weights=(16, 8, 4, 2, 1, 1))
        replicas = [sum(1 for h in plan if j in h) for j in range(6)]
        assert replicas[0] == max(replicas)
        assert replicas[0] > replicas[5]

    def test_uniform_weights_roughly_even(self):
        plan = plan_hosting(24, 3, weights=(1,) * 6)
        replicas = [sum(1 for h in plan if j in h) for j in range(6)]
        assert max(replicas) - min(replicas) <= 1

    def test_full_hosting_degenerates_to_everything(self):
        plan = plan_hosting(5, 6, weights=(3, 2, 1, 1, 1, 1))
        assert all(h == frozenset(range(6)) for h in plan)

    def test_no_duplicate_service_on_one_bs(self):
        plan = plan_hosting(10, 2, weights=(100, 1, 1, 1, 1, 1))
        assert all(len(h) == len(set(h)) == 2 for h in plan)

    def test_sub_unit_share_cannot_outrank_heavier_service(self):
        # Regression: with shares [0.98, 1.07, 1.95] the 1-slot floor
        # already over-serves service 0, yet its 0.98 fractional
        # remainder used to win the spare slot ahead of service 2,
        # giving the lightest service two replicas and the heaviest one.
        plan = plan_hosting(2, 2, weights=(10.0, 11.0, 20.0))
        replicas = [sum(1 for h in plan if j in h) for j in range(3)]
        assert replicas == [1, 1, 2]

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            plan_hosting(0, 3, weights=(1, 1))
        with pytest.raises(ConfigurationError):
            plan_hosting(5, 0, weights=(1, 1))
        with pytest.raises(ConfigurationError):
            plan_hosting(5, 3, weights=(1, 1))  # slots > services
        with pytest.raises(ConfigurationError):
            plan_hosting(5, 2, weights=(0, 0))
        with pytest.raises(ConfigurationError):
            plan_hosting(5, 2, weights=(-1, 2))
        with pytest.raises(ConfigurationError):
            plan_hosting(2, 1, weights=(1,) * 6)  # 2 slots, 6 services


class TestRehostScenario:
    def test_rehost_applies_plan(self, small_scenario):
        plan = [frozenset({0, 1, 2})] * small_scenario.network.bs_count
        rehosted = rehost_scenario(small_scenario, plan)
        for bs in rehosted.network.base_stations:
            assert bs.hosted_services == frozenset({0, 1, 2})
            assert all(
                100 <= c <= 150 for c in bs.cru_capacity.values()
            )

    def test_population_untouched(self, small_scenario):
        plan = [frozenset(range(6))] * small_scenario.network.bs_count
        rehosted = rehost_scenario(small_scenario, plan)
        assert (
            rehosted.network.user_equipments
            == small_scenario.network.user_equipments
        )
        assert [bs.position for bs in rehosted.network.base_stations] == [
            bs.position for bs in small_scenario.network.base_stations
        ]

    def test_plan_size_mismatch_rejected(self, small_scenario):
        with pytest.raises(ConfigurationError):
            rehost_scenario(small_scenario, [frozenset({0})])

    def test_rehost_deterministic(self, small_scenario):
        plan = [frozenset({0, 3})] * small_scenario.network.bs_count
        a = rehost_scenario(small_scenario, plan, seed=4)
        b = rehost_scenario(small_scenario, plan, seed=4)
        assert [bs.cru_capacity for bs in a.network.base_stations] == [
            bs.cru_capacity for bs in b.network.base_stations
        ]


class TestPlacementPayoff:
    def test_demand_aware_hosting_beats_random_under_skew(self):
        """The extension's claim: with scarce hosting slots and skewed
        demand, popularity-proportional placement serves more UEs and
        earns more profit than random placement."""
        config = ScenarioConfig.paper(
            service_popularity=(16, 8, 4, 2, 1, 1), hosted_fraction=0.5
        )
        random_profit = 0.0
        planned_profit = 0.0
        for seed in range(3):
            scenario = build_scenario(config, 700, seed)
            random_profit += run_allocation(
                scenario, DMRAAllocator(pricing=scenario.pricing)
            ).metrics.total_profit
            plan = plan_hosting(
                scenario.network.bs_count,
                3,
                empirical_popularity(scenario.network),
            )
            planned = rehost_scenario(scenario, plan, seed=seed)
            planned_profit += run_allocation(
                planned, DMRAAllocator(pricing=planned.pricing)
            ).metrics.total_profit
        assert planned_profit > random_profit
