"""Unit tests for the interference models."""

import pytest

from repro.errors import ConfigurationError
from repro.radio.interference import (
    ConstantInterference,
    LoadInterference,
    NoInterference,
)
from repro.radio.pathloss import PaperPathLoss
from repro.radio.units import dbm_to_mw


class TestNoInterference:
    def test_always_zero(self):
        model = NoInterference()
        assert model.interference_mw(100.0, [], 10.0) == 0.0
        assert model.interference_mw(100.0, [50.0, 60.0], 10.0) == 0.0


class TestConstantInterference:
    def test_floor_value(self):
        model = ConstantInterference(floor_dbm=-110.0)
        assert model.interference_mw(100.0, [], 10.0) == pytest.approx(
            dbm_to_mw(-110.0)
        )

    def test_independent_of_link(self):
        model = ConstantInterference(floor_dbm=-110.0)
        assert model.interference_mw(10.0, [], 10.0) == model.interference_mw(
            900.0, [1.0, 2.0], 20.0
        )


class TestLoadInterference:
    def test_zero_without_other_transmitters(self):
        model = LoadInterference(PaperPathLoss(), activity_factor=0.5)
        assert model.interference_mw(100.0, [], 10.0) == 0.0

    def test_zero_activity_factor(self):
        model = LoadInterference(PaperPathLoss(), activity_factor=0.0)
        assert model.interference_mw(100.0, [50.0, 60.0], 10.0) == 0.0

    def test_scales_with_activity_factor(self):
        low = LoadInterference(PaperPathLoss(), activity_factor=0.1)
        high = LoadInterference(PaperPathLoss(), activity_factor=0.2)
        others = [100.0, 200.0]
        assert high.interference_mw(50.0, others, 10.0) == pytest.approx(
            2.0 * low.interference_mw(50.0, others, 10.0)
        )

    def test_sums_received_powers(self):
        model = LoadInterference(PaperPathLoss(), activity_factor=1.0)
        single_a = model.interference_mw(50.0, [100.0], 10.0)
        single_b = model.interference_mw(50.0, [200.0], 10.0)
        combined = model.interference_mw(50.0, [100.0, 200.0], 10.0)
        assert combined == pytest.approx(single_a + single_b)

    def test_nearer_interferers_hurt_more(self):
        model = LoadInterference(PaperPathLoss(), activity_factor=1.0)
        near = model.interference_mw(50.0, [50.0], 10.0)
        far = model.interference_mw(50.0, [500.0], 10.0)
        assert near > far

    def test_invalid_activity_factor(self):
        with pytest.raises(ConfigurationError):
            LoadInterference(PaperPathLoss(), activity_factor=-0.1)
        with pytest.raises(ConfigurationError):
            LoadInterference(PaperPathLoss(), activity_factor=1.1)
