"""Unit tests for the domain entities."""

import pytest

from repro.errors import ConfigurationError
from repro.model.entities import (
    BaseStation,
    Service,
    ServiceProvider,
    UserEquipment,
)
from repro.model.geometry import Point


class TestService:
    def test_valid_service(self):
        svc = Service(service_id=3, name="video")
        assert svc.service_id == 3
        assert svc.name == "video"

    def test_negative_id_rejected(self):
        with pytest.raises(ConfigurationError):
            Service(service_id=-1)


class TestServiceProvider:
    def test_defaults(self):
        sp = ServiceProvider(sp_id=0)
        assert sp.cru_price > 0
        assert sp.other_cost >= 0

    def test_margin_ceiling(self):
        sp = ServiceProvider(sp_id=1, cru_price=10.0, other_cost=0.5)
        assert sp.margin_ceiling == pytest.approx(9.5)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ServiceProvider(sp_id=-1)
        with pytest.raises(ConfigurationError):
            ServiceProvider(sp_id=0, cru_price=0.0)
        with pytest.raises(ConfigurationError):
            ServiceProvider(sp_id=0, other_cost=-0.1)

    def test_immutability(self):
        sp = ServiceProvider(sp_id=0)
        with pytest.raises(AttributeError):
            sp.cru_price = 99.0


class TestBaseStation:
    def make(self, **overrides):
        spec = dict(
            bs_id=0,
            sp_id=0,
            position=Point(0, 0),
            cru_capacity={0: 100, 1: 150, 2: 0},
            rrb_capacity=55,
        )
        spec.update(overrides)
        return BaseStation(**spec)

    def test_hosts_service_requires_positive_crus(self):
        bs = self.make()
        assert bs.hosts_service(0)
        assert bs.hosts_service(1)
        assert not bs.hosts_service(2)  # zero CRUs => z_{i,j} = 0
        assert not bs.hosts_service(9)  # absent from the map

    def test_hosted_services(self):
        assert self.make().hosted_services == frozenset({0, 1})

    def test_total_cru_capacity(self):
        assert self.make().total_cru_capacity == 250

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            self.make(bs_id=-1)
        with pytest.raises(ConfigurationError):
            self.make(rrb_capacity=0)
        with pytest.raises(ConfigurationError):
            self.make(cru_capacity={0: -5})

    def test_empty_hosting_allowed(self):
        bs = self.make(cru_capacity={})
        assert bs.hosted_services == frozenset()
        assert bs.total_cru_capacity == 0


class TestUserEquipment:
    def make(self, **overrides):
        spec = dict(
            ue_id=0,
            sp_id=0,
            position=Point(10, 10),
            service_id=2,
            cru_demand=4,
            rate_demand_bps=3e6,
        )
        spec.update(overrides)
        return UserEquipment(**spec)

    def test_valid_ue(self):
        ue = self.make()
        assert ue.service_id == 2
        assert ue.tx_power_dbm == 10.0  # the paper's default

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            self.make(ue_id=-1)
        with pytest.raises(ConfigurationError):
            self.make(cru_demand=0)
        with pytest.raises(ConfigurationError):
            self.make(rate_demand_bps=0.0)

    def test_immutability(self):
        ue = self.make()
        with pytest.raises(AttributeError):
            ue.cru_demand = 99
