"""Unit tests for the BS resource ledgers."""

import pytest

from repro.compute.cru import BSLedger, LedgerPool
from repro.errors import CapacityError, ConfigurationError, UnknownEntityError
from repro.model.entities import BaseStation
from repro.model.geometry import Point


def make_bs(bs_id=0, crus=None, rrbs=10):
    return BaseStation(
        bs_id=bs_id,
        sp_id=0,
        position=Point(0, 0),
        cru_capacity=crus if crus is not None else {0: 20, 1: 15},
        rrb_capacity=rrbs,
    )


class TestGrant:
    def test_grant_reserves_both_resources(self):
        ledger = BSLedger(make_bs())
        grant = ledger.grant(ue_id=1, service_id=0, crus=5, rrbs=3)
        assert grant.bs_id == 0 and grant.ue_id == 1
        assert ledger.remaining_crus(0) == 15
        assert ledger.remaining_crus(1) == 15  # other service untouched
        assert ledger.remaining_rrbs == 7
        assert ledger.served_ue_ids == {1}

    def test_insufficient_crus_rejected_atomically(self):
        ledger = BSLedger(make_bs())
        with pytest.raises(CapacityError, match="CRU"):
            ledger.grant(ue_id=1, service_id=0, crus=21, rrbs=1)
        # Nothing was deducted.
        assert ledger.remaining_crus(0) == 20
        assert ledger.remaining_rrbs == 10

    def test_insufficient_rrbs_rejected_atomically(self):
        ledger = BSLedger(make_bs())
        with pytest.raises(CapacityError, match="RRB"):
            ledger.grant(ue_id=1, service_id=0, crus=5, rrbs=11)
        assert ledger.remaining_crus(0) == 20
        assert ledger.remaining_rrbs == 10

    def test_unhosted_service_has_zero_capacity(self):
        ledger = BSLedger(make_bs())
        assert ledger.remaining_crus(9) == 0
        with pytest.raises(CapacityError):
            ledger.grant(ue_id=1, service_id=9, crus=1, rrbs=1)

    def test_double_grant_rejected(self):
        ledger = BSLedger(make_bs())
        ledger.grant(ue_id=1, service_id=0, crus=2, rrbs=1)
        with pytest.raises(ConfigurationError, match="already holds"):
            ledger.grant(ue_id=1, service_id=1, crus=2, rrbs=1)

    def test_non_positive_amounts_rejected(self):
        ledger = BSLedger(make_bs())
        with pytest.raises(ConfigurationError):
            ledger.grant(ue_id=1, service_id=0, crus=0, rrbs=1)
        with pytest.raises(ConfigurationError):
            ledger.grant(ue_id=1, service_id=0, crus=1, rrbs=0)

    def test_exact_exhaustion_allowed(self):
        ledger = BSLedger(make_bs())
        ledger.grant(ue_id=1, service_id=0, crus=20, rrbs=10)
        assert ledger.remaining_crus(0) == 0
        assert ledger.remaining_rrbs == 0

    def test_can_grant_mirrors_grant(self):
        ledger = BSLedger(make_bs())
        assert ledger.can_grant(1, 0, 20, 10)
        assert not ledger.can_grant(1, 0, 21, 10)
        assert not ledger.can_grant(1, 0, 20, 11)
        assert not ledger.can_grant(1, 9, 1, 1)
        assert not ledger.can_grant(1, 0, 0, 1)
        ledger.grant(ue_id=1, service_id=0, crus=5, rrbs=5)
        assert not ledger.can_grant(1, 0, 1, 1)  # double grant


class TestRelease:
    def test_release_returns_resources(self):
        ledger = BSLedger(make_bs())
        ledger.grant(ue_id=1, service_id=0, crus=5, rrbs=3)
        released = ledger.release(1)
        assert released.crus == 5 and released.rrbs == 3
        assert ledger.remaining_crus(0) == 20
        assert ledger.remaining_rrbs == 10
        assert ledger.served_ue_ids == frozenset()

    def test_release_unknown_ue_rejected(self):
        ledger = BSLedger(make_bs())
        with pytest.raises(UnknownEntityError):
            ledger.release(42)

    def test_grant_release_grant_cycle(self):
        ledger = BSLedger(make_bs())
        for _ in range(5):
            ledger.grant(ue_id=1, service_id=0, crus=20, rrbs=10)
            ledger.release(1)
        ledger.check_invariants()
        assert ledger.remaining_crus(0) == 20


class TestUtilizationAndInvariants:
    def test_utilization_fractions(self):
        ledger = BSLedger(make_bs())  # 35 CRUs total, 10 RRBs
        cru_util, rrb_util = ledger.utilization()
        assert cru_util == 0.0 and rrb_util == 0.0
        ledger.grant(ue_id=1, service_id=0, crus=7, rrbs=5)
        cru_util, rrb_util = ledger.utilization()
        assert cru_util == pytest.approx(7 / 35)
        assert rrb_util == pytest.approx(0.5)

    def test_check_invariants_passes_normally(self):
        ledger = BSLedger(make_bs())
        ledger.grant(ue_id=1, service_id=0, crus=5, rrbs=3)
        ledger.grant(ue_id=2, service_id=1, crus=4, rrbs=2)
        ledger.check_invariants()

    def test_check_invariants_detects_corruption(self):
        ledger = BSLedger(make_bs())
        ledger.grant(ue_id=1, service_id=0, crus=5, rrbs=3)
        ledger._remaining_rrbs += 1  # simulate a bug
        with pytest.raises(CapacityError):
            ledger.check_invariants()


class TestLedgerPool:
    def test_pool_builds_one_ledger_per_bs(self):
        pool = LedgerPool([make_bs(0), make_bs(1), make_bs(2)])
        assert len(pool) == 3
        assert pool.ledger(1).bs_id == 1

    def test_unknown_bs_rejected(self):
        pool = LedgerPool([make_bs(0)])
        with pytest.raises(UnknownEntityError):
            pool.ledger(5)

    def test_all_grants_collects_across_ledgers(self):
        pool = LedgerPool([make_bs(0), make_bs(1)])
        pool.ledger(0).grant(ue_id=1, service_id=0, crus=2, rrbs=1)
        pool.ledger(1).grant(ue_id=2, service_id=1, crus=3, rrbs=2)
        grants = pool.all_grants()
        assert {(g.bs_id, g.ue_id) for g in grants} == {(0, 1), (1, 2)}

    def test_pool_invariant_check(self):
        pool = LedgerPool([make_bs(0), make_bs(1)])
        pool.ledger(0).grant(ue_id=1, service_id=0, crus=2, rrbs=1)
        pool.check_invariants()
