"""Unit tests for the BS pricing policies (Eqs. 9--10)."""

import pytest

from repro.econ.pricing import FlatPricing, PaperPricing
from repro.errors import ConfigurationError


class TestPaperPricing:
    def test_same_sp_formula(self):
        pricing = PaperPricing(
            base_price=1.0, cross_sp_markup=2.0, distance_weight=0.01
        )
        # p = b * (1 + sigma * d) = 1 + 0.01 * 200 = 3.0
        assert pricing.price_per_cru(200.0, same_sp=True) == pytest.approx(3.0)

    def test_cross_sp_formula(self):
        pricing = PaperPricing(
            base_price=1.0, cross_sp_markup=2.0, distance_weight=0.01
        )
        # p = b * (iota + sigma * d) = 2 + 2 = 4.0
        assert pricing.price_per_cru(200.0, same_sp=False) == pytest.approx(4.0)

    def test_cross_sp_premium_is_iota_minus_one_times_b(self):
        pricing = PaperPricing(base_price=2.0, cross_sp_markup=1.5)
        for d in (0.0, 100.0, 500.0):
            premium = pricing.price_per_cru(d, False) - pricing.price_per_cru(
                d, True
            )
            assert premium == pytest.approx(2.0 * 0.5)

    def test_price_linear_in_distance(self):
        """The paper: transmission price grows linearly with distance."""
        pricing = PaperPricing()
        p0 = pricing.price_per_cru(0.0, True)
        p100 = pricing.price_per_cru(100.0, True)
        p200 = pricing.price_per_cru(200.0, True)
        assert p200 - p100 == pytest.approx(p100 - p0)

    def test_iota_one_removes_ownership_effect(self):
        """Paper: 'When iota = 1, p_{i,u} is only determined by distance.'"""
        pricing = PaperPricing(cross_sp_markup=1.0)
        for d in (0.0, 50.0, 450.0):
            assert pricing.price_per_cru(d, True) == pytest.approx(
                pricing.price_per_cru(d, False)
            )

    def test_price_monotone_in_distance(self):
        pricing = PaperPricing()
        prices = [pricing.price_per_cru(d, True) for d in (0, 10, 100, 500)]
        assert prices == sorted(prices)
        assert len(set(prices)) == len(prices)

    def test_max_price_bounds_all_prices(self):
        pricing = PaperPricing()
        bound = pricing.max_price(500.0)
        for d in (0.0, 123.0, 499.9, 500.0):
            for same_sp in (True, False):
                assert pricing.price_per_cru(d, same_sp) <= bound + 1e-12

    def test_scales_with_base_price(self):
        small = PaperPricing(base_price=1.0)
        large = PaperPricing(base_price=3.0)
        assert large.price_per_cru(200.0, False) == pytest.approx(
            3.0 * small.price_per_cru(200.0, False)
        )

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PaperPricing(base_price=0.0)
        with pytest.raises(ConfigurationError):
            PaperPricing(cross_sp_markup=0.9)
        with pytest.raises(ConfigurationError):
            PaperPricing(distance_weight=-0.01)
        with pytest.raises(ConfigurationError):
            PaperPricing().price_per_cru(-1.0, True)


class TestFlatPricing:
    def test_distance_independent(self):
        pricing = FlatPricing(same_sp_price=1.0, cross_sp_price=2.0)
        assert pricing.price_per_cru(0.0, True) == pricing.price_per_cru(
            500.0, True
        )

    def test_ownership_effect(self):
        pricing = FlatPricing(same_sp_price=1.0, cross_sp_price=2.0)
        assert pricing.price_per_cru(100.0, False) > pricing.price_per_cru(
            100.0, True
        )

    def test_max_price(self):
        assert FlatPricing(1.0, 2.0).max_price(500.0) == 2.0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            FlatPricing(same_sp_price=0.0)
        with pytest.raises(ConfigurationError):
            FlatPricing(same_sp_price=3.0, cross_sp_price=2.0)
        with pytest.raises(ConfigurationError):
            FlatPricing().price_per_cru(-1.0, True)
