"""Unit tests for arrival traces and diurnal (non-homogeneous) arrivals."""

import numpy as np
import pytest

from repro.dynamics.trace import (
    ArrivalTrace,
    DiurnalArrivals,
    read_trace_csv,
    write_trace_csv,
)
from repro.errors import ConfigurationError


class TestArrivalTrace:
    def test_replay_within_horizon(self):
        trace = ArrivalTrace(times_s=(1.0, 5.0, 9.0, 20.0))
        rng = np.random.default_rng(0)
        assert trace.arrival_times(10.0, rng) == [1.0, 5.0, 9.0]
        assert trace.arrival_times(100.0, rng) == [1.0, 5.0, 9.0, 20.0]

    def test_replay_is_rng_independent(self):
        trace = ArrivalTrace(times_s=(1.0, 2.0))
        a = trace.arrival_times(10.0, np.random.default_rng(1))
        b = trace.arrival_times(10.0, np.random.default_rng(999))
        assert a == b

    def test_properties(self):
        trace = ArrivalTrace(times_s=(1.0, 2.0, 7.5))
        assert trace.count == 3
        assert trace.duration_s == 7.5
        assert ArrivalTrace(times_s=()).duration_s == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ArrivalTrace(times_s=(-1.0, 2.0))
        with pytest.raises(ConfigurationError):
            ArrivalTrace(times_s=(5.0, 2.0))
        with pytest.raises(ConfigurationError):
            ArrivalTrace(times_s=(1.0,)).arrival_times(
                0.0, np.random.default_rng(0)
            )

    def test_usable_in_online_config(self):
        from repro.dynamics import DeterministicHolding, OnlineConfig, run_online
        from repro.sim.config import ScenarioConfig

        trace = ArrivalTrace(times_s=tuple(float(t) for t in range(1, 31)))
        outcome = run_online(
            ScenarioConfig.paper(),
            OnlineConfig(
                horizon_s=60.0,
                arrivals=trace,
                holding=DeterministicHolding(duration_s=5.0),
            ),
            seed=1,
        )
        assert outcome.arrivals == 30
        assert outcome.blocking_probability == 0.0


class TestTraceCsv:
    def test_round_trip(self, tmp_path):
        original = ArrivalTrace(times_s=(0.5, 1.25, 99.0))
        path = write_trace_csv(tmp_path / "trace.csv", original.times_s)
        loaded = read_trace_csv(path)
        assert loaded.times_s == original.times_s

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time\n1.0\n")
        with pytest.raises(ConfigurationError):
            read_trace_csv(path)

    def test_malformed_value_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("arrival_time_s\nnot-a-number\n")
        with pytest.raises(ConfigurationError):
            read_trace_csv(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_trace_csv(tmp_path / "nope.csv")


class TestDiurnalArrivals:
    def test_rate_profile(self):
        diurnal = DiurnalArrivals(
            base_rate_per_s=1.0, peak_rate_per_s=9.0, period_s=100.0
        )
        assert diurnal.rate_at(0.0) == pytest.approx(1.0)
        assert diurnal.rate_at(50.0) == pytest.approx(9.0)  # half-period
        assert diurnal.rate_at(100.0) == pytest.approx(1.0)  # full period
        assert diurnal.rate_at(25.0) == pytest.approx(5.0)  # midpoint

    def test_arrivals_concentrate_at_peak(self):
        diurnal = DiurnalArrivals(
            base_rate_per_s=0.5, peak_rate_per_s=8.0, period_s=600.0
        )
        times = diurnal.arrival_times(600.0, np.random.default_rng(3))
        first_sixth = sum(1 for t in times if t < 100.0)
        midday = sum(1 for t in times if 250.0 <= t < 350.0)
        assert midday > 2 * first_sixth

    def test_total_volume_matches_mean_rate(self):
        diurnal = DiurnalArrivals(
            base_rate_per_s=2.0, peak_rate_per_s=6.0, period_s=500.0
        )
        # Mean rate over a full period is (base + peak) / 2 = 4/s.
        counts = [
            len(diurnal.arrival_times(500.0, np.random.default_rng(seed)))
            for seed in range(10)
        ]
        assert sum(counts) / len(counts) == pytest.approx(2000.0, rel=0.1)

    def test_constant_profile_degenerates_to_poisson_volume(self):
        diurnal = DiurnalArrivals(
            base_rate_per_s=3.0, peak_rate_per_s=3.0, period_s=100.0
        )
        times = diurnal.arrival_times(1000.0, np.random.default_rng(1))
        assert len(times) == pytest.approx(3000, rel=0.1)

    def test_seed_determinism(self):
        diurnal = DiurnalArrivals(1.0, 5.0, 200.0)
        a = diurnal.arrival_times(200.0, np.random.default_rng(7))
        b = diurnal.arrival_times(200.0, np.random.default_rng(7))
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(-1.0, 5.0)
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(5.0, 2.0)
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(0.0, 0.0)
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(1.0, 2.0, period_s=0.0)
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(1.0, 2.0).arrival_times(
                0.0, np.random.default_rng(0)
            )
