"""Unit tests for the byte-bounded scenario cache (satellite of the
scale subsystem: sweeps must not pin gigabytes of large scenarios)."""

import pytest

from repro.sim.config import ScenarioConfig
from repro.sim.scenario import (
    build_scenario_cached,
    clear_scenario_cache,
    estimate_scenario_bytes,
    scenario_cache_info,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_scenario_cache()
    yield
    clear_scenario_cache()


CONFIG = ScenarioConfig.paper()


class TestEstimateScenarioBytes:
    def test_positive_and_monotone_in_population(self):
        small = build_scenario_cached(CONFIG, ue_count=30, seed=0)
        large = build_scenario_cached(CONFIG, ue_count=120, seed=0)
        assert estimate_scenario_bytes(small) > 0
        assert estimate_scenario_bytes(large) > estimate_scenario_bytes(
            small
        )

    def test_accounts_geometry_and_radio_map(self):
        scenario = build_scenario_cached(CONFIG, ue_count=50, seed=1)
        floor = (
            scenario.network.estimated_geometry_bytes()
            + scenario.radio_map.estimated_bytes()
        )
        assert estimate_scenario_bytes(scenario) >= floor


class TestByteBound:
    def test_tracked_bytes_match_entries(self):
        build_scenario_cached(CONFIG, ue_count=30, seed=0)
        build_scenario_cached(CONFIG, ue_count=40, seed=0)
        info = scenario_cache_info()
        assert info["size"] == 2
        assert info["bytes"] > 0

    def test_byte_cap_evicts_lru(self, monkeypatch):
        # Cap the cache at 1 MB; each paper-config scenario at these
        # sizes is a few hundred KB, so the third insert must evict.
        monkeypatch.setenv("DMRA_SCENARIO_CACHE_MB", "1")
        first = build_scenario_cached(CONFIG, ue_count=600, seed=0)
        size = estimate_scenario_bytes(first)
        assert size > 1024 * 1024 / 3, "fixture scenario too small"
        for seed in (1, 2):
            build_scenario_cached(CONFIG, ue_count=600, seed=seed)
        info = scenario_cache_info()
        assert info["byte_capacity"] == 1024 * 1024
        assert info["bytes"] <= info["byte_capacity"] or info["size"] == 1
        # The oldest entry was evicted: re-requesting it is a miss.
        before = scenario_cache_info()["misses"]
        build_scenario_cached(CONFIG, ue_count=600, seed=0)
        assert scenario_cache_info()["misses"] == before + 1

    def test_oversized_scenario_returned_uncached(self, monkeypatch):
        monkeypatch.setenv("DMRA_SCENARIO_CACHE_MB", "1")
        # 1500 UEs x 25 BSs is over a MB of geometry + radio map.
        scenario = build_scenario_cached(CONFIG, ue_count=1500, seed=5)
        assert estimate_scenario_bytes(scenario) > 1024 * 1024
        assert scenario_cache_info()["size"] == 0

    def test_zero_disables_byte_bound(self, monkeypatch):
        monkeypatch.setenv("DMRA_SCENARIO_CACHE_MB", "0")
        assert scenario_cache_info()["byte_capacity"] == 0
        for seed in range(4):
            build_scenario_cached(CONFIG, ue_count=200, seed=seed)
        assert scenario_cache_info()["size"] == 4

    def test_invalid_value_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("DMRA_SCENARIO_CACHE_MB", "many")
        assert scenario_cache_info()["byte_capacity"] == 1024 * 1024 * 1024

    def test_hits_do_not_grow_bytes(self):
        build_scenario_cached(CONFIG, ue_count=30, seed=0)
        bytes_before = scenario_cache_info()["bytes"]
        build_scenario_cached(CONFIG, ue_count=30, seed=0)
        info = scenario_cache_info()
        assert info["bytes"] == bytes_before
        assert info["hits"] == 1
