"""Unit tests for the live observability plane (``repro.obs.live``)."""

import json

import pytest

from repro.obs import (
    FlightRecorder,
    LiveServer,
    Recorder,
    http_get,
    live_snapshot_document,
    parse_exposition,
    read_metrics,
)


@pytest.fixture
def recorder() -> Recorder:
    rec = Recorder(meta={"command": "test"})
    rec.count("stream.events", 3)
    rec.gauge("stream.queue_depth", 7)
    rec.observe("stream.event_latency_s.arrival", 0.002)
    rec.observe("stream.event_latency_s.arrival", 0.004)
    return rec


@pytest.fixture
def server(recorder):
    live = LiveServer(recorder, listen="127.0.0.1:0").start()
    yield live
    live.stop()


class TestSnapshot:
    def test_snapshot_reflects_scalar_state(self, recorder):
        doc = live_snapshot_document(recorder)
        assert doc.family("dmra_stream_events_total").sample() == 3
        latency = doc.family("dmra_stream_event_latency_s")
        assert latency.sample(event="arrival", stat="count") == 2

    def test_snapshot_never_materializes_spans(self, recorder):
        with recorder.span("outer"):
            live_snapshot_document(recorder)
        # The open span above would make tree materialization blow up
        # or record a half-open span; scalar snapshots must not care.
        assert recorder.counters["stream.events"] == 3


class TestEndpoints:
    def test_healthz_is_immediately_live(self, server):
        status, body = http_get(server.url + "/healthz")
        assert (status, body) == (200, "ok\n")

    def test_readyz_transitions_on_first_flush(self, server):
        assert http_get(server.url + "/readyz")[0] == 503
        server.flush_to_disk()  # no flush path: just marks ready
        assert http_get(server.url + "/readyz")[0] == 200

    def test_metrics_scrape_parses_and_matches_recorder(self, server):
        status, body = http_get(server.url + "/metrics")
        assert status == 200
        doc = parse_exposition(body)
        assert doc.family("dmra_stream_events_total").sample() == 3
        latency = doc.family("dmra_stream_event_latency_s")
        assert latency.sample(event="arrival", stat="count") == 2
        assert server.scrapes == 1

    def test_scrape_tracks_recorder_updates(self, recorder, server):
        recorder.count("stream.events", 5)
        doc = parse_exposition(http_get(server.url + "/metrics")[1])
        assert doc.family("dmra_stream_events_total").sample() == 8

    def test_unknown_path_404s(self, server):
        assert http_get(server.url + "/nope")[0] == 404

    def test_flightz_404s_without_flight_recorder(self, server):
        assert http_get(server.url + "/flightz")[0] == 404


class TestFlightEndpoint:
    def test_flightz_serves_ring_dump(self, recorder):
        flight = FlightRecorder(capacity=4)
        for i in range(6):
            flight.note("tick", i=i)
        live = LiveServer(recorder, flight=flight).start()
        try:
            status, body = http_get(live.url + "/flightz")
        finally:
            live.stop()
        assert status == 200
        dump = json.loads(body)
        assert dump["schema"] == "dmra.flight/1"
        assert dump["total_noted"] == 6
        assert [e["i"] for e in dump["entries"]] == [2, 3, 4, 5]

    def test_flight_occupancy_exported_as_gauge(self, recorder):
        flight = FlightRecorder(capacity=4)
        flight.note("tick")
        live = LiveServer(recorder, flight=flight).start()
        try:
            doc = parse_exposition(http_get(live.url + "/metrics")[1])
        finally:
            live.stop()
        fam = doc.family("dmra_flight_entries")
        assert fam.sample(stat="held") == 1
        assert fam.sample(stat="noted") == 1


class TestFlush:
    def test_periodic_flush_writes_document_and_marks_ready(
        self, recorder, tmp_path
    ):
        target = tmp_path / "live.json"
        live = LiveServer(
            recorder, flush_path=target, flush_interval_s=0.05
        ).start()
        try:
            deadline = 100
            while not live.ready and deadline:
                import time

                time.sleep(0.05)
                deadline -= 1
            assert live.ready
            assert http_get(live.url + "/readyz")[0] == 200
        finally:
            live.stop()
        doc = read_metrics(target)
        assert doc.family("dmra_stream_events_total").sample() == 3
        assert live.flushes >= 1

    def test_final_flush_on_stop_captures_last_state(
        self, recorder, tmp_path
    ):
        target = tmp_path / "final.json"
        live = LiveServer(recorder, flush_path=target).start()
        recorder.count("stream.events", 100)
        live.stop()
        doc = read_metrics(target)
        assert doc.family("dmra_stream_events_total").sample() == 103


class TestLifecycle:
    def test_bad_listen_spec_rejected(self, recorder):
        with pytest.raises(ValueError):
            LiveServer(recorder, listen="9090")

    def test_start_and_stop_are_idempotent(self, recorder):
        live = LiveServer(recorder).start()
        assert live.start() is live
        live.stop()
        live.stop()

    def test_ephemeral_port_reported(self, server):
        assert server.port and server.port > 0
        assert str(server.port) in server.url
