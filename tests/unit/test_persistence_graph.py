"""Unit tests for JSON persistence and the association-graph analysis."""

import json

import pytest

from repro.analysis.graph import association_graph, graph_report
from repro.baselines.cloud_only import CloudOnlyAllocator
from repro.core.dmra import DMRAAllocator
from repro.errors import AllocationError, ConfigurationError
from repro.sim.config import ScenarioConfig
from repro.sim.persistence import load_assignment, save_assignment
from repro.sim.scenario import build_scenario


@pytest.fixture(scope="module")
def allocated():
    scenario = build_scenario(ScenarioConfig.paper(), 150, 9)
    assignment = DMRAAllocator(pricing=scenario.pricing).allocate(
        scenario.network, scenario.radio_map
    )
    return scenario, assignment


class TestPersistence:
    def test_round_trip_identity(self, allocated, tmp_path):
        scenario, assignment = allocated
        path = save_assignment(tmp_path / "run.json", scenario, assignment)
        loaded_scenario, loaded = load_assignment(path)
        assert sorted(loaded.association_pairs()) == sorted(
            assignment.association_pairs()
        )
        assert loaded.cloud_ue_ids == assignment.cloud_ue_ids
        assert loaded.rounds == assignment.rounds
        assert loaded_scenario.seed == scenario.seed
        assert loaded_scenario.config == scenario.config

    def test_file_is_stable_json(self, allocated, tmp_path):
        scenario, assignment = allocated
        a = save_assignment(tmp_path / "a.json", scenario, assignment)
        b = save_assignment(tmp_path / "b.json", scenario, assignment)
        assert a.read_text() == b.read_text()
        document = json.loads(a.read_text())
        assert document["format_version"] == 1
        assert len(document["grants"]) == assignment.edge_served_count

    def test_load_validates_by_default(self, allocated, tmp_path):
        scenario, assignment = allocated
        path = save_assignment(tmp_path / "run.json", scenario, assignment)
        document = json.loads(path.read_text())
        document["grants"][0]["crus"] += 1  # corrupt one grant
        path.write_text(json.dumps(document))
        with pytest.raises(AllocationError):
            load_assignment(path)
        # Skipping validation loads the corrupted file anyway.
        _, loaded = load_assignment(path, validate=False)
        assert loaded.edge_served_count == assignment.edge_served_count

    def test_unreadable_file_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_assignment(path)
        with pytest.raises(ConfigurationError):
            load_assignment(tmp_path / "missing.json")

    def test_wrong_version_rejected(self, allocated, tmp_path):
        scenario, assignment = allocated
        path = save_assignment(tmp_path / "run.json", scenario, assignment)
        document = json.loads(path.read_text())
        document["format_version"] = 999
        path.write_text(json.dumps(document))
        with pytest.raises(ConfigurationError, match="version"):
            load_assignment(path)

    def test_popularity_tuple_round_trip(self, tmp_path):
        config = ScenarioConfig.paper(service_popularity=(3, 2, 1, 1, 1, 1))
        scenario = build_scenario(config, 60, 2)
        assignment = DMRAAllocator(pricing=scenario.pricing).allocate(
            scenario.network, scenario.radio_map
        )
        path = save_assignment(tmp_path / "p.json", scenario, assignment)
        loaded_scenario, _ = load_assignment(path)
        assert loaded_scenario.config.service_popularity == (3, 2, 1, 1, 1, 1)


class TestAssociationGraph:
    def test_graph_structure(self, allocated):
        scenario, assignment = allocated
        graph = association_graph(scenario.network, assignment)
        assert graph.number_of_nodes() == (
            scenario.network.bs_count + scenario.network.ue_count
        )
        assert graph.number_of_edges() == assignment.edge_served_count
        # Bipartite: every edge joins a UE node and a BS node.
        for a, b in graph.edges():
            assert {a[0], b[0]} == {"ue", "bs"}

    def test_report_consistency(self, allocated):
        scenario, assignment = allocated
        report = graph_report(scenario.network, assignment)
        assert sum(report.bs_loads.values()) == assignment.edge_served_count
        assert report.isolated_ue_count == assignment.cloud_count
        assert report.min_bs_load <= report.max_bs_load
        assert sum(report.sp_mixing.values()) == assignment.edge_served_count
        assert 0.0 <= report.same_sp_edge_fraction <= 1.0
        assert report.load_imbalance >= 1.0

    def test_cloud_only_graph_has_no_edges(self, allocated):
        scenario, _ = allocated
        empty = CloudOnlyAllocator().allocate(
            scenario.network, scenario.radio_map
        )
        report = graph_report(scenario.network, empty)
        assert report.max_bs_load == 0
        assert report.idle_bs_count == scenario.network.bs_count
        assert report.isolated_ue_count == scenario.network.ue_count
        assert report.load_imbalance == 1.0
        assert report.same_sp_edge_fraction == 0.0

    def test_mixing_matrix_matches_metrics(self, allocated):
        scenario, assignment = allocated
        report = graph_report(scenario.network, assignment)
        same = sum(
            count
            for (ue_sp, bs_sp), count in report.sp_mixing.items()
            if ue_sp == bs_sp
        )
        assert report.same_sp_edge_fraction == pytest.approx(
            same / assignment.edge_served_count
        )
