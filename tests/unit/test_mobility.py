"""Unit tests for the mobility simulation."""

import math
from dataclasses import dataclass

import numpy as np
import pytest

from repro.dynamics.mobility import (
    RandomWalk,
    RandomWaypoint,
    run_mobility,
)
from repro.errors import ConfigurationError
from repro.model.geometry import Point, Rectangle
from repro.sim.config import ScenarioConfig

CONFIG = ScenarioConfig.paper()
REGION = Rectangle.square(1200.0)


class TestMobilityModels:
    def test_random_walk_distance_bounded_by_speed(self):
        model = RandomWalk(speed_mps=2.0)
        rng = np.random.default_rng(1)
        start = Point(600.0, 600.0)
        end = model.step(0, start, dt_s=10.0, region=REGION, rng=rng)
        assert start.distance_to(end) <= 20.0 + 1e-9

    def test_random_walk_stays_in_region(self):
        model = RandomWalk(speed_mps=100.0)
        rng = np.random.default_rng(2)
        position = Point(0.0, 0.0)  # on a corner
        for _ in range(50):
            position = model.step(0, position, 10.0, REGION, rng)
            assert REGION.contains(position)

    def test_random_walk_zero_speed_is_static(self):
        model = RandomWalk(speed_mps=0.0)
        rng = np.random.default_rng(3)
        start = Point(100.0, 100.0)
        assert model.step(0, start, 10.0, REGION, rng) == start

    def test_random_walk_invalid_speed(self):
        with pytest.raises(ConfigurationError):
            RandomWalk(speed_mps=-1.0)

    def test_waypoint_moves_toward_target(self):
        model = RandomWaypoint(speed_min_mps=1.0, speed_max_mps=1.0)
        rng = np.random.default_rng(4)
        start = Point(600.0, 600.0)
        first = model.step(0, start, 5.0, REGION, rng)
        target, _ = model._targets[0]
        # After the first step the UE is strictly closer to its target.
        assert first.distance_to(target) < start.distance_to(target)

    def test_waypoint_speed_bounds(self):
        model = RandomWaypoint(speed_min_mps=2.0, speed_max_mps=3.0)
        rng = np.random.default_rng(5)
        position = Point(600.0, 600.0)
        moved = model.step(0, position, dt_s=4.0, region=REGION, rng=rng)
        assert 0 < position.distance_to(moved) <= 12.0 + 1e-9

    def test_waypoint_invalid_speeds(self):
        with pytest.raises(ConfigurationError):
            RandomWaypoint(speed_min_mps=0.0)
        with pytest.raises(ConfigurationError):
            RandomWaypoint(speed_min_mps=3.0, speed_max_mps=1.0)

    def test_waypoint_per_ue_state_is_independent(self):
        model = RandomWaypoint()
        rng = np.random.default_rng(6)
        model.step(0, Point(10, 10), 1.0, REGION, rng)
        model.step(1, Point(20, 20), 1.0, REGION, rng)
        assert set(model._targets) == {0, 1}


class TestRunMobility:
    def run(self, **overrides):
        kwargs = dict(
            config=CONFIG,
            ue_count=200,
            epochs=5,
            epoch_duration_s=30.0,
            seed=1,
            mobility=RandomWalk(speed_mps=5.0),
        )
        kwargs.update(overrides)
        return run_mobility(**kwargs)

    def test_epoch_structure(self):
        outcome = self.run()
        assert outcome.epoch_count == 6  # epoch 0 + 5 mobility epochs
        assert [r.epoch for r in outcome.records] == list(range(6))
        assert outcome.records[0].handovers == 0

    def test_population_conserved_per_epoch(self):
        outcome = self.run()
        for record in outcome.records:
            assert record.edge_served + record.cloud == 200

    def test_seed_determinism(self):
        a = self.run()
        b = self.run()
        assert a.records == b.records

    def test_faster_ues_cause_more_handovers(self):
        slow = self.run(mobility=RandomWalk(speed_mps=1.0), epochs=8)
        fast = self.run(mobility=RandomWalk(speed_mps=30.0), epochs=8)
        assert fast.total_handovers >= slow.total_handovers

    def test_static_ues_never_hand_over(self):
        outcome = self.run(mobility=RandomWalk(speed_mps=0.0))
        assert outcome.total_handovers == 0
        profits = [r.total_profit for r in outcome.records]
        assert all(p == pytest.approx(profits[0]) for p in profits)

    def test_reoptimization_beats_sticky_profit(self):
        sticky = self.run(epochs=8, mobility=RandomWalk(speed_mps=20.0))
        fresh = self.run(
            epochs=8, mobility=RandomWalk(speed_mps=20.0), sticky=False
        )
        assert fresh.mean_profit >= sticky.mean_profit
        assert fresh.total_handovers >= sticky.total_handovers

    def test_profit_positive_throughout(self):
        outcome = self.run()
        assert all(r.total_profit > 0 for r in outcome.records)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            self.run(epochs=0)
        with pytest.raises(ConfigurationError):
            self.run(epoch_duration_s=0.0)

    def test_handover_rate_definition(self):
        outcome = self.run()
        expected = outcome.total_handovers / (200 * outcome.epoch_count)
        assert outcome.handover_rate == pytest.approx(expected)


@dataclass(frozen=True)
class HalfFrozenWalk:
    """A walk where only even-numbered UEs move.

    Exercises the partial-move incremental path: odd UEs keep their
    positions (and cached radio-map columns), even UEs are displaced.
    The RNG is still drawn for every UE, matching the run loop's
    one-draw-per-UE contract.
    """

    speed_mps: float = 5.0

    def step(self, ue_id, position, dt_s, region, rng):
        """Move even UEs like a random walk; pin odd UEs in place."""
        angle = float(rng.uniform(0.0, 2.0 * math.pi))
        if ue_id % 2 == 1:
            return position
        distance = self.speed_mps * dt_s
        x = float(np.clip(
            position.x + distance * math.cos(angle),
            region.x_min, region.x_max,
        ))
        y = float(np.clip(
            position.y + distance * math.sin(angle),
            region.y_min, region.y_max,
        ))
        return Point(x, y)


class TestIncrementalParity:
    """`incremental=True` must replay full-rebuild runs exactly."""

    def run_pair(self, **overrides):
        kwargs = dict(
            config=CONFIG,
            ue_count=150,
            epochs=4,
            epoch_duration_s=30.0,
            seed=3,
            mobility=RandomWalk(speed_mps=5.0),
        )
        kwargs.update(overrides)
        incremental = run_mobility(**kwargs, incremental=True)
        full = run_mobility(**kwargs, incremental=False)
        return incremental, full

    def test_random_walk_records_identical(self):
        incremental, full = self.run_pair()
        assert incremental.records == full.records

    def test_partial_moves_records_identical(self):
        incremental, full = self.run_pair(mobility=HalfFrozenWalk())
        assert incremental.records == full.records

    def test_non_sticky_records_identical(self):
        incremental, full = self.run_pair(sticky=False)
        assert incremental.records == full.records

    def test_waypoint_records_identical(self):
        # Stateful model: fresh instances per run so targets don't leak.
        incremental = run_mobility(
            CONFIG, 100, 3, 30.0, 4,
            mobility=RandomWaypoint(), incremental=True,
        )
        full = run_mobility(
            CONFIG, 100, 3, 30.0, 4,
            mobility=RandomWaypoint(), incremental=False,
        )
        assert incremental.records == full.records

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ConfigurationError):
            run_mobility(
                CONFIG, 10, 1, 30.0, 0, position_epsilon_m=-1.0
            )

    def test_mcs_rate_model_records_identical(self):
        config = ScenarioConfig.paper(rate_model="mcs")
        incremental, full = self.run_pair(config=config)
        assert incremental.records == full.records


class TestRebuildCrossover:
    """The displaced-fraction crossover must not change results, ever."""

    def test_crossover_settings_all_agree(self):
        # Half the UEs move each epoch (HalfFrozenWalk): fraction 0.25
        # forces the rebuild route, 0.75 the patch route, and the
        # default sits at the boundary.  All must match the
        # full-rebuild reference exactly.
        kwargs = dict(
            config=CONFIG,
            ue_count=120,
            epochs=3,
            epoch_duration_s=30.0,
            seed=7,
            mobility=HalfFrozenWalk(),
        )
        reference = run_mobility(**kwargs, incremental=False)
        for fraction in (0.25, 0.5, 0.75, 1.0):
            outcome = run_mobility(
                **kwargs, incremental=True, rebuild_fraction=fraction
            )
            assert outcome.records == reference.records, fraction

    def test_random_walk_takes_rebuild_route(self):
        # Everyone moves: the crossover must route to the full rebuild
        # (no incremental radio.build spans), and still match.
        from repro.obs import Recorder, telemetry_session

        kwargs = dict(
            config=CONFIG,
            ue_count=60,
            epochs=2,
            epoch_duration_s=30.0,
            seed=5,
            mobility=RandomWalk(speed_mps=5.0),
        )
        recorder = Recorder()
        with telemetry_session(recorder):
            incremental = run_mobility(**kwargs, incremental=True)
        full = run_mobility(**kwargs, incremental=False)
        assert incremental.records == full.records
        incremental_builds = [
            span
            for span in _walk_spans(recorder.roots)
            if span.name == "radio.build"
            and span.attrs.get("path") == "incremental"
        ]
        assert not incremental_builds
        # Boundary clipping can pin the odd UE, so "everyone" is >= 90%.
        displaced = recorder.gauges["mobility.displaced_fraction"]
        assert displaced.min >= 0.9

    def test_rebuild_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            run_mobility(
                CONFIG, 10, 1, 30.0, 0, rebuild_fraction=0.0
            )


def _walk_spans(spans):
    for span in spans:
        yield span
        yield from _walk_spans(span.children)
