"""Unit tests for per-SP tariff heterogeneity and the crossover CLI."""

import pytest

from repro.cli import main
from repro.core.dmra import DMRAAllocator
from repro.errors import ConfigurationError, TariffViolationError
from repro.sim.config import ScenarioConfig
from repro.sim.runner import run_allocation
from repro.sim.scenario import build_scenario


class TestHeterogeneousTariffs:
    def test_uniform_default(self):
        config = ScenarioConfig.paper()
        assert all(config.cru_price_of_sp(k) == 10.0 for k in range(5))

    def test_per_sp_prices_applied(self):
        prices = (12.0, 10.0, 10.0, 10.0, 8.0)
        config = ScenarioConfig.paper(sp_cru_prices=prices)
        scenario = build_scenario(config, 50, 1)
        for sp in scenario.network.providers:
            assert sp.cru_price == prices[sp.sp_id]

    def test_arity_validated(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig.paper(sp_cru_prices=(10.0, 10.0))

    def test_eq16_guard_applies_per_sp(self):
        # SP 4's price of 5 is below the worst-case BS price + m_k^o.
        config = ScenarioConfig.paper(
            sp_cru_prices=(12.0, 10.0, 10.0, 10.0, 5.0)
        )
        with pytest.raises(TariffViolationError, match="SP 4"):
            build_scenario(config, 10, 0)

    def test_premium_sp_earns_more_per_subscriber(self):
        """A higher m_k is pure margin under fixed demand: the premium
        SP's per-subscriber profit must exceed the discount SP's."""
        config = ScenarioConfig.paper(
            sp_cru_prices=(13.0, 10.0, 10.0, 10.0, 8.0)
        )
        premium = 0.0
        discount = 0.0
        for seed in range(3):
            scenario = build_scenario(config, 500, seed)
            metrics = run_allocation(
                scenario, DMRAAllocator(pricing=scenario.pricing)
            ).metrics
            for sp_id in (0, 4):
                subscribers = len(
                    scenario.network.user_equipments_of_sp(sp_id)
                )
                value = metrics.profit_by_sp[sp_id] / max(subscribers, 1)
                if sp_id == 0:
                    premium += value
                else:
                    discount += value
        assert premium > discount

    def test_allocation_itself_is_tariff_invariant(self):
        """m_k moves money, not matching: the association must be
        identical under different subscriber tariffs (UE preferences use
        BS prices, not m_k)."""
        base = build_scenario(ScenarioConfig.paper(), 300, 4)
        varied = build_scenario(
            ScenarioConfig.paper(sp_cru_prices=(13.0, 11.0, 10.0, 9.0, 8.5)),
            300,
            4,
        )
        a = DMRAAllocator(pricing=base.pricing).allocate(
            base.network, base.radio_map
        )
        b = DMRAAllocator(pricing=varied.pricing).allocate(
            varied.network, varied.radio_map
        )
        assert sorted(a.association_pairs()) == sorted(b.association_pairs())


class TestCrossoverCli:
    def test_crossover_found(self, capsys):
        assert (
            main(
                [
                    "crossover", "--lo", "800", "--hi", "1400",
                    "--tolerance", "100",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "crossover at ~" in out

    def test_no_crossover_reported(self, capsys):
        assert (
            main(
                [
                    "crossover", "--a", "dmra", "--b", "random",
                    "--lo", "200", "--hi", "500", "--tolerance", "100",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "no crossover" in out
        assert "dmra leads" in out
