"""Unit tests for the asyncio service loop and the ``dmra serve`` CLI."""

import pytest

from repro.cli import main
from repro.dynamics.arrivals import ExponentialHolding, PoissonArrivals
from repro.errors import ConfigurationError
from repro.sim.config import ScenarioConfig
from repro.stream import StreamConfig, run_stream, serve_stream

CONFIG = ScenarioConfig.paper()


def short_stream(move_fraction=0.1):
    return StreamConfig(
        horizon_s=60.0,
        arrivals=PoissonArrivals(rate_per_s=2.0),
        holding=ExponentialHolding(mean_s=30.0),
        move_fraction=move_fraction,
    )


class TestServeStream:
    def test_service_equals_sync_replay(self):
        stream = short_stream()
        served = serve_stream(CONFIG, stream, seed=3)
        replayed = run_stream(CONFIG, stream, seed=3)
        assert served.digest == replayed.digest
        assert served.events_processed == replayed.events_processed
        assert served.total_profit == replayed.total_profit
        assert served.profit_by_sp == replayed.profit_by_sp

    def test_backpressure_queue_of_one(self):
        # maxsize=1 forces a producer suspension on every event; the
        # outcome must be unchanged.
        stream = short_stream()
        tight = serve_stream(CONFIG, stream, seed=4, queue_maxsize=1)
        loose = serve_stream(CONFIG, stream, seed=4, queue_maxsize=1024)
        assert tight.digest == loose.digest

    def test_service_mode_parity(self):
        stream = short_stream()
        inc = serve_stream(CONFIG, stream, seed=5, mode="incremental")
        res = serve_stream(CONFIG, stream, seed=5, mode="rescratch")
        assert inc.digest == res.digest

    def test_bad_queue_maxsize_rejected(self):
        with pytest.raises(ConfigurationError, match="queue_maxsize"):
            serve_stream(CONFIG, short_stream(), seed=1, queue_maxsize=0)

    def test_queue_depth_recorded_as_span_attr(self):
        from repro.obs import Recorder, telemetry_session

        recorder = Recorder()
        with telemetry_session(recorder):
            serve_stream(CONFIG, short_stream(), seed=6)
        spans = [
            span for span in recorder.all_spans()
            if span.name == "stream.serve"
        ]
        assert len(spans) == 1
        assert spans[0].attrs["queue_max_depth"] >= 1


SERVE_ARGS = [
    "serve", "--rate", "2", "--horizon", "45", "--holding", "20",
    "--move-fraction", "0.1", "--seed", "3",
]


class TestServeCli:
    def test_serve_smoke(self, capsys):
        assert main(SERVE_ARGS) == 0
        out = capsys.readouterr().out
        assert "mode=incremental" in out
        assert "digest:" in out
        assert "events/s" in out

    def test_mode_documents_diff_clean(self, tmp_path, capsys):
        """The CI equivalence gate in miniature: outcome documents of
        the two modes must be identical under ``dmra trace diff``."""
        inc = tmp_path / "inc.json"
        res = tmp_path / "res.json"
        assert main(
            SERVE_ARGS + ["--mode", "incremental", "--metrics", str(inc)]
        ) == 0
        assert main(
            SERVE_ARGS + ["--mode", "rescratch", "--metrics", str(res)]
        ) == 0
        assert main(["trace", "diff", str(inc), str(res)]) == 0
        out = capsys.readouterr().out
        assert "verdict: OK" in out

    def test_mode_documents_carry_aligned_manifests(self, tmp_path):
        from repro.obs import read_metrics

        inc = tmp_path / "inc.json"
        assert main(SERVE_ARGS + ["--metrics", str(inc)]) == 0
        doc = read_metrics(inc)
        assert doc.manifest is not None
        assert doc.family("dmra_stream_arrivals_total").sample() > 0
        # Wall throughput is present but under the diff-ignored prefix.
        assert doc.has_family("dmra_wall_stream_events_per_s")

    def test_serve_trace_recorded(self, tmp_path, capsys):
        trace = tmp_path / "serve.jsonl"
        assert main(SERVE_ARGS + ["--trace", str(trace)]) == 0
        assert trace.exists()
        assert "wrote trace" in capsys.readouterr().out

    def test_sharded_serve(self, capsys):
        assert main(SERVE_ARGS + ["--shards", "4"]) == 0
        assert "shards=4" in capsys.readouterr().out
