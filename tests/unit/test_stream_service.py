"""Unit tests for the asyncio service loop and the ``dmra serve`` CLI."""

import pytest

from repro.cli import main
from repro.dynamics.arrivals import ExponentialHolding, PoissonArrivals
from repro.errors import ConfigurationError
from repro.sim.config import ScenarioConfig
from repro.stream import StreamConfig, run_stream, serve_stream

CONFIG = ScenarioConfig.paper()


def short_stream(move_fraction=0.1):
    return StreamConfig(
        horizon_s=60.0,
        arrivals=PoissonArrivals(rate_per_s=2.0),
        holding=ExponentialHolding(mean_s=30.0),
        move_fraction=move_fraction,
    )


class TestServeStream:
    def test_service_equals_sync_replay(self):
        stream = short_stream()
        served = serve_stream(CONFIG, stream, seed=3)
        replayed = run_stream(CONFIG, stream, seed=3)
        assert served.digest == replayed.digest
        assert served.events_processed == replayed.events_processed
        assert served.total_profit == replayed.total_profit
        assert served.profit_by_sp == replayed.profit_by_sp

    def test_backpressure_queue_of_one(self):
        # maxsize=1 forces a producer suspension on every event; the
        # outcome must be unchanged.
        stream = short_stream()
        tight = serve_stream(CONFIG, stream, seed=4, queue_maxsize=1)
        loose = serve_stream(CONFIG, stream, seed=4, queue_maxsize=1024)
        assert tight.digest == loose.digest

    def test_service_mode_parity(self):
        stream = short_stream()
        inc = serve_stream(CONFIG, stream, seed=5, mode="incremental")
        res = serve_stream(CONFIG, stream, seed=5, mode="rescratch")
        assert inc.digest == res.digest

    def test_bad_queue_maxsize_rejected(self):
        with pytest.raises(ConfigurationError, match="queue_maxsize"):
            serve_stream(CONFIG, short_stream(), seed=1, queue_maxsize=0)

    def test_queue_depth_recorded_as_span_attr(self):
        from repro.obs import Recorder, telemetry_session

        recorder = Recorder()
        with telemetry_session(recorder):
            serve_stream(CONFIG, short_stream(), seed=6)
        spans = [
            span for span in recorder.all_spans()
            if span.name == "stream.serve"
        ]
        assert len(spans) == 1
        assert spans[0].attrs["queue_max_depth"] >= 1

    def test_queue_depth_reaches_gauge_and_histogram(self):
        from repro.obs import Recorder, telemetry_session

        recorder = Recorder()
        with telemetry_session(recorder):
            outcome = serve_stream(CONFIG, short_stream(), seed=6)
        depth = recorder.histograms["stream.queue_depth_hist"]
        assert depth.count == outcome.events_processed
        assert recorder.gauges["stream.queue_depth"].max >= 1

    def test_per_event_latency_histograms_by_kind(self):
        from repro.obs import Recorder, telemetry_session

        recorder = Recorder()
        with telemetry_session(recorder):
            outcome = serve_stream(CONFIG, short_stream(), seed=6)
        by_kind = {
            name.rpartition(".")[2]: hist
            for name, hist in recorder.histograms.items()
            if name.startswith("stream.event_latency_s.")
        }
        assert set(by_kind) >= {"arrival", "departure"}
        assert sum(h.count for h in by_kind.values()) == (
            outcome.events_processed
        )
        assert all(h.sum >= 0.0 for h in by_kind.values())

    def test_flight_recorder_notes_every_event(self):
        from repro.obs import FlightRecorder

        flight = FlightRecorder(capacity=10_000)
        outcome = serve_stream(
            CONFIG, short_stream(), seed=6, flight=flight
        )
        dump = flight.dump()
        # One note per event plus the final "finish" entry.
        assert dump["total_noted"] == outcome.events_processed + 1
        assert dump["entries"][-1]["kind"] == "finish"
        assert dump["entries"][-1]["events"] == outcome.events_processed


SERVE_ARGS = [
    "serve", "--rate", "2", "--horizon", "45", "--holding", "20",
    "--move-fraction", "0.1", "--seed", "3",
]


class TestServeCli:
    def test_serve_smoke(self, capsys):
        assert main(SERVE_ARGS) == 0
        out = capsys.readouterr().out
        assert "mode=incremental" in out
        assert "digest:" in out
        assert "events/s" in out

    def test_mode_documents_diff_clean(self, tmp_path, capsys):
        """The CI equivalence gate in miniature: outcome documents of
        the two modes must be identical under ``dmra trace diff``."""
        inc = tmp_path / "inc.json"
        res = tmp_path / "res.json"
        assert main(
            SERVE_ARGS + ["--mode", "incremental", "--metrics", str(inc)]
        ) == 0
        assert main(
            SERVE_ARGS + ["--mode", "rescratch", "--metrics", str(res)]
        ) == 0
        assert main(["trace", "diff", str(inc), str(res)]) == 0
        out = capsys.readouterr().out
        assert "verdict: OK" in out

    def test_mode_documents_carry_aligned_manifests(self, tmp_path):
        from repro.obs import read_metrics

        inc = tmp_path / "inc.json"
        assert main(SERVE_ARGS + ["--metrics", str(inc)]) == 0
        doc = read_metrics(inc)
        assert doc.manifest is not None
        assert doc.family("dmra_stream_arrivals_total").sample() > 0
        # Wall throughput is present but under the diff-ignored prefix.
        assert doc.has_family("dmra_wall_stream_events_per_s")

    def test_serve_trace_recorded(self, tmp_path, capsys):
        trace = tmp_path / "serve.jsonl"
        assert main(SERVE_ARGS + ["--trace", str(trace)]) == 0
        assert trace.exists()
        assert "wrote trace" in capsys.readouterr().out

    def test_sharded_serve(self, capsys):
        assert main(SERVE_ARGS + ["--shards", "4"]) == 0
        assert "shards=4" in capsys.readouterr().out

    def test_listen_writes_port_file_and_final_flush(
        self, tmp_path, capsys
    ):
        from repro.obs import read_metrics

        port_file = tmp_path / "port"
        flush = tmp_path / "live.json"
        assert main(SERVE_ARGS + [
            "--listen", "127.0.0.1:0",
            "--port-file", str(port_file),
            "--flush", str(flush),
        ]) == 0
        out = capsys.readouterr().out
        assert "live endpoint:" in out
        port = int(port_file.read_text().strip())
        assert port > 0
        # The exit-path flush captures the replay's final totals.
        doc = read_metrics(flush)
        latency = doc.family("dmra_stream_event_latency_s")
        assert latency.sample(event="arrival", stat="count") > 0
        assert doc.has_family("dmra_stream_queue_depth_hist")
        assert doc.has_family("dmra_flight_entries")

    def test_flight_dump_written(self, tmp_path, capsys):
        import json

        dump_path = tmp_path / "flight.json"
        assert main(SERVE_ARGS + ["--flight-dump", str(dump_path)]) == 0
        assert "wrote flight dump" in capsys.readouterr().out
        dump = json.loads(dump_path.read_text())
        assert dump["schema"] == "dmra.flight/1"
        assert dump["entries"][-1]["kind"] == "finish"
