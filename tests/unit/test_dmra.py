"""Unit tests for the DMRA allocator."""

import pytest

from conftest import make_tiny_network
from repro.core.dmra import DMRAAllocator, DMRAPolicy
from repro.econ.pricing import PaperPricing
from repro.errors import ConfigurationError
from repro.model.geometry import Point
from repro.radio.channel import build_radio_map
from repro.radio.sinr import LinkBudget

PRICING = PaperPricing(base_price=1.0, cross_sp_markup=2.0, distance_weight=0.01)


def allocate(network, **kwargs):
    radio_map = build_radio_map(network, LinkBudget())
    assignment = DMRAAllocator(pricing=PRICING, **kwargs).allocate(
        network, radio_map
    )
    assignment.validate(network, radio_map)
    return assignment


class TestDMRAAllocator:
    def test_prefers_cheaper_same_sp_bs(self):
        # Both BSs at 200 m; DMRA must pick the same-SP one.
        network = make_tiny_network(
            ue_specs=[dict(ue_id=0, sp_id=0, position=Point(200.0, 0.0))]
        )
        assignment = allocate(network)
        assert assignment.serving_bs(0) == 0

    def test_distance_overrides_ownership_when_cheaper(self):
        # Same-SP BS 0 is 380 m away; cross-SP BS 1 is 20 m away.
        # Prices: same = 1 + 3.8 = 4.8; cross = 2 + 0.2 = 2.2.
        network = make_tiny_network(
            ue_specs=[dict(ue_id=0, sp_id=0, position=Point(380.0, 0.0))]
        )
        assignment = allocate(network)
        assert assignment.serving_bs(0) == 1

    def test_bs_side_same_sp_priority(self):
        """When two UEs contest one slot, the BS keeps its own subscriber."""
        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=0, sp_id=1, position=Point(100.0, 0.0), cru_demand=5),
                dict(ue_id=1, sp_id=0, position=Point(101.0, 0.0), cru_demand=5),
            ],
            bs_specs=[
                # Only BS 0 exists and only 5 CRUs: one UE must lose.
                dict(
                    bs_id=0,
                    sp_id=0,
                    position=Point(0, 0),
                    cru_capacity={0: 5, 1: 5},
                ),
                dict(
                    bs_id=1,
                    sp_id=1,
                    position=Point(2000.0, 0.0),
                    cru_capacity={0: 5, 1: 5},
                ),
            ],
            coverage_radius_m=500.0,
        )
        assignment = allocate(network)
        # UE 1 shares SP 0 with BS 0 and wins; UE 0 has no alternative.
        assert assignment.serving_bs(1) == 0
        assert assignment.cloud_ue_ids == {0}

    def test_same_sp_priority_ablation_flag(self):
        """Without SP priority the same contest is decided by footprint."""
        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=0, sp_id=1, position=Point(100.0, 0.0), cru_demand=3),
                dict(ue_id=1, sp_id=0, position=Point(101.0, 0.0), cru_demand=5),
            ],
            bs_specs=[
                dict(
                    bs_id=0,
                    sp_id=0,
                    position=Point(0, 0),
                    cru_capacity={0: 5, 1: 5},
                ),
                dict(
                    bs_id=1,
                    sp_id=1,
                    position=Point(2000.0, 0.0),
                    cru_capacity={0: 5, 1: 5},
                ),
            ],
            coverage_radius_m=500.0,
        )
        with_priority = allocate(network, same_sp_priority=True)
        without_priority = allocate(network, same_sp_priority=False)
        assert with_priority.serving_bs(1) == 0  # own subscriber wins
        assert without_priority.serving_bs(0) == 0  # lighter UE wins

    def test_full_coverage_goes_to_cloud(self):
        network = make_tiny_network(
            ue_specs=[dict(ue_id=0, position=Point(1199.0, 1199.0))],
            coverage_radius_m=100.0,
        )
        assignment = allocate(network)
        assert assignment.cloud_ue_ids == {0}

    def test_invalid_rho_rejected(self):
        with pytest.raises(ConfigurationError):
            DMRAAllocator(pricing=PRICING, rho=-1.0)
        with pytest.raises(ConfigurationError):
            DMRAPolicy(pricing=PRICING, rho=-0.5)

    def test_default_pricing_is_paper(self):
        allocator = DMRAAllocator()
        assert isinstance(allocator.pricing, PaperPricing)
        assert allocator.name == "dmra"

    def test_determinism_on_paper_scenario(self, small_scenario):
        allocator = DMRAAllocator(pricing=small_scenario.pricing)
        a = allocator.allocate(small_scenario.network, small_scenario.radio_map)
        b = allocator.allocate(small_scenario.network, small_scenario.radio_map)
        assert a.association_pairs() == b.association_pairs()
        assert a.cloud_ue_ids == b.cloud_ue_ids

    def test_validates_on_paper_scenario(self, small_scenario):
        allocator = DMRAAllocator(pricing=small_scenario.pricing)
        assignment = allocator.allocate(
            small_scenario.network, small_scenario.radio_map
        )
        assignment.validate(small_scenario.network, small_scenario.radio_map)
        # At 120 UEs the network is underloaded: everyone is edge-served.
        assert assignment.cloud_count == 0
