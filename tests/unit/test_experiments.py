"""Unit tests for the experiment registry, ASCII plots, and CSV IO."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.ascii_plot import render_chart, render_table
from repro.experiments.figures import EXPERIMENTS, Scale, get_experiment
from repro.experiments.io import read_series_csv, write_series_csv
from repro.sim.results import Series


def sample_series(label="dmra", values=((400, 10.0), (500, 12.0), (600, 13.0))):
    return Series.from_samples(label, [(x, [v]) for x, v in values])


class TestRegistry:
    def test_all_six_figures_registered(self):
        assert set(EXPERIMENTS) == {
            "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
        }

    def test_experiment_metadata(self):
        fig2 = get_experiment("fig2")
        assert fig2.exp_id == "fig2"
        assert "iota=2" in fig2.title
        assert fig2.x_label == "#UEs"

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            get_experiment("fig99")

    def test_scales(self):
        paper = Scale.paper()
        smoke = Scale.smoke()
        assert paper.ue_counts == (400, 500, 600, 700, 800, 900)
        assert paper.rho_ue_count == 1000
        assert len(paper.seeds) >= 3
        assert max(smoke.ue_counts) < min(paper.ue_counts)

    def test_smoke_run_fig2_structure(self):
        result = get_experiment("fig2").run(Scale.smoke())
        assert set(result.labels()) == {"dmra", "dcsp", "nonco"}
        for label in result.labels():
            assert len(result[label].points) == len(Scale.smoke().ue_counts)

    def test_smoke_run_fig7_structure(self):
        result = get_experiment("fig7").run(Scale.smoke())
        assert result.labels() == ("dmra",)
        assert result["dmra"].xs == tuple(Scale.smoke().rho_values)


class TestAsciiPlot:
    def test_chart_contains_title_and_legend(self):
        chart = render_chart(
            [sample_series("dmra"), sample_series("nonco", ((400, 8.0), (600, 9.0)))],
            title="demo",
            x_label="#UEs",
            y_label="profit",
        )
        assert "demo" in chart
        assert "o dmra" in chart
        assert "x nonco" in chart
        assert "#UEs" in chart

    def test_chart_has_requested_size(self):
        chart = render_chart(
            [sample_series()], title="t", width=40, height=10
        )
        grid_lines = [l for l in chart.splitlines() if "|" in l]
        assert len(grid_lines) == 10

    def test_flat_series_does_not_crash(self):
        chart = render_chart(
            [sample_series(values=((1, 5.0), (2, 5.0)))], title="flat"
        )
        assert "flat" in chart

    def test_single_point_series(self):
        chart = render_chart([sample_series(values=((1, 5.0),))], title="dot")
        assert "o" in chart

    def test_empty_input_rejected(self):
        with pytest.raises(ConfigurationError):
            render_chart([], title="x")
        with pytest.raises(ConfigurationError):
            render_chart([sample_series()], title="x", width=5)

    def test_table_rendering(self):
        table = render_table(
            [sample_series("dmra"), sample_series("dcsp")], x_header="#UEs"
        )
        lines = table.splitlines()
        assert "#UEs" in lines[0]
        assert "dmra" in lines[0] and "dcsp" in lines[0]
        assert len(lines) == 2 + 3  # header + separator + 3 x-values

    def test_table_missing_points_dash(self):
        table = render_table(
            [
                sample_series("a", ((1, 1.0),)),
                sample_series("b", ((2, 2.0),)),
            ]
        )
        assert "-" in table.splitlines()[-1]


class TestCsvIO:
    def test_round_trip(self, tmp_path):
        original = [sample_series("dmra"), sample_series("nonco")]
        path = write_series_csv(tmp_path / "fig.csv", original, x_header="ues")
        loaded = read_series_csv(path, x_header="ues")
        by_label = {s.label: s for s in loaded}
        assert set(by_label) == {"dmra", "nonco"}
        for series in original:
            restored = by_label[series.label]
            assert restored.xs == series.xs
            assert restored.means == series.means

    def test_creates_parent_directories(self, tmp_path):
        path = write_series_csv(
            tmp_path / "deep" / "nested" / "fig.csv", [sample_series()]
        )
        assert path.exists()

    def test_empty_series_list_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_series_csv(tmp_path / "x.csv", [])

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ConfigurationError):
            read_series_csv(path, x_header="x")
