"""Unit tests for the summarize CLI subcommand."""

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments.io import write_series_csv
from repro.sim.results import Series


def stash_fig(tmp_path, exp_id="fig2", x_header="#UEs"):
    series = [
        Series.from_samples("dmra", [(400, [10.0]), (500, [12.0])]),
        Series.from_samples("nonco", [(400, [9.0]), (500, [11.0])]),
    ]
    write_series_csv(tmp_path / f"{exp_id}.csv", series, x_header=x_header)


class TestSummarize:
    def test_renders_known_experiment(self, tmp_path, capsys):
        stash_fig(tmp_path)
        assert main(["summarize", "--results", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out  # registry metadata applied
        assert "dmra" in out and "nonco" in out
        assert "#UEs" in out

    def test_only_filter(self, tmp_path, capsys):
        stash_fig(tmp_path, "fig2")
        stash_fig(tmp_path, "fig4")
        assert (
            main(
                ["summarize", "--results", str(tmp_path), "--only", "fig4"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "Fig. 2" not in out

    def test_unknown_csv_uses_generic_labels(self, tmp_path, capsys):
        series = [Series.from_samples("a", [(1, [2.0]), (2, [3.0])])]
        write_series_csv(tmp_path / "custom.csv", series, x_header="x")
        assert main(["summarize", "--results", str(tmp_path)]) == 0
        assert "custom" in capsys.readouterr().out

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not a directory"):
            main(["summarize", "--results", str(tmp_path / "nope")])

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no matching"):
            main(["summarize", "--results", str(tmp_path)])
