"""Unit tests for the ``--trace`` flag and the ``dmra trace`` report."""

import pytest

from repro.cli import main
from repro.obs import read_trace
from repro.obs.telemetry import NULL, get_telemetry


class TestTraceFlag:
    def test_run_writes_trace_file(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main([
            "run", "--ues", "40", "--seed", "1", "--trace", str(path),
        ]) == 0
        assert f"wrote trace {path}" in capsys.readouterr().out
        trace = read_trace(path)
        assert trace.meta["command"] == "run"
        names = {span.name for span in trace.all_spans()}
        assert "match" in names
        assert "radio.build" in names
        assert trace.counters["match.accepted"] > 0

    def test_trace_env_variable_is_default(self, tmp_path, capsys,
                                           monkeypatch):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv("DMRA_TRACE", str(path))
        assert main(["run", "--ues", "40", "--seed", "1"]) == 0
        assert path.exists()
        assert read_trace(path).meta["command"] == "run"

    def test_without_flag_no_backend_installed(self, capsys, monkeypatch):
        monkeypatch.delenv("DMRA_TRACE", raising=False)
        assert main(["run", "--ues", "40", "--seed", "1"]) == 0
        assert get_telemetry() is NULL
        assert "wrote trace" not in capsys.readouterr().out

    def test_online_trace_records_event_loop(self, tmp_path, capsys):
        path = tmp_path / "online.jsonl"
        assert main([
            "online", "--rate", "1", "--horizon", "60",
            "--trace", str(path),
        ]) == 0
        trace = read_trace(path)
        names = {span.name for span in trace.all_spans()}
        assert "online.run" in names
        assert trace.timers["online.batch"].count > 0

    def test_failures_trace_records_repair(self, tmp_path, capsys):
        path = tmp_path / "failures.jsonl"
        assert main([
            "failures", "--ues", "100", "--bs", "0",
            "--trace", str(path),
        ]) == 0
        trace = read_trace(path)
        names = {span.name for span in trace.all_spans()}
        assert "failures.inject" in names


class TestTraceCommand:
    @pytest.fixture()
    def trace_file(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        main(["run", "--ues", "40", "--seed", "1", "--trace", str(path)])
        capsys.readouterr()  # swallow the run's output
        return path

    def test_renders_report(self, trace_file, capsys):
        assert main(["trace", str(trace_file)]) == 0
        output = capsys.readouterr().out
        assert "command=run" in output
        assert "match" in output
        assert "match.accepted" in output

    def test_min_ms_filter(self, trace_file, capsys):
        assert main(["trace", str(trace_file), "--min-ms", "1e9"]) == 0
        output = capsys.readouterr().out
        assert "match.round" not in output

    def test_missing_file_raises(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["trace", str(tmp_path / "absent.jsonl")])
