"""Unit tests for the ``--trace`` flag and the ``dmra trace`` report."""

import json

import pytest

from repro.cli import main
from repro.obs import read_metrics, read_trace
from repro.obs.telemetry import NULL, get_telemetry


class TestTraceFlag:
    def test_run_writes_trace_file(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main([
            "run", "--ues", "40", "--seed", "1", "--trace", str(path),
        ]) == 0
        assert f"wrote trace {path}" in capsys.readouterr().out
        trace = read_trace(path)
        assert trace.meta["command"] == "run"
        names = {span.name for span in trace.all_spans()}
        assert "match" in names
        assert "radio.build" in names
        assert trace.counters["match.accepted"] > 0

    def test_trace_env_variable_is_default(self, tmp_path, capsys,
                                           monkeypatch):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv("DMRA_TRACE", str(path))
        assert main(["run", "--ues", "40", "--seed", "1"]) == 0
        assert path.exists()
        assert read_trace(path).meta["command"] == "run"

    def test_without_flag_no_backend_installed(self, capsys, monkeypatch):
        monkeypatch.delenv("DMRA_TRACE", raising=False)
        assert main(["run", "--ues", "40", "--seed", "1"]) == 0
        assert get_telemetry() is NULL
        assert "wrote trace" not in capsys.readouterr().out

    def test_online_trace_records_event_loop(self, tmp_path, capsys):
        path = tmp_path / "online.jsonl"
        assert main([
            "online", "--rate", "1", "--horizon", "60",
            "--trace", str(path),
        ]) == 0
        trace = read_trace(path)
        names = {span.name for span in trace.all_spans()}
        assert "online.run" in names
        assert trace.timers["online.batch"].count > 0

    def test_failures_trace_records_repair(self, tmp_path, capsys):
        path = tmp_path / "failures.jsonl"
        assert main([
            "failures", "--ues", "100", "--bs", "0",
            "--trace", str(path),
        ]) == 0
        trace = read_trace(path)
        names = {span.name for span in trace.all_spans()}
        assert "failures.inject" in names


class TestTraceCommand:
    @pytest.fixture()
    def trace_file(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        main(["run", "--ues", "40", "--seed", "1", "--trace", str(path)])
        capsys.readouterr()  # swallow the run's output
        return path

    def test_renders_report(self, trace_file, capsys):
        assert main(["trace", str(trace_file)]) == 0
        output = capsys.readouterr().out
        assert "command=run" in output
        assert "match" in output
        assert "match.accepted" in output

    def test_min_ms_filter(self, trace_file, capsys):
        assert main(["trace", str(trace_file), "--min-ms", "1e9"]) == 0
        output = capsys.readouterr().out
        # The per-round spans are filtered out; the match.rounds gauge
        # (similar name, different artifact) legitimately stays.
        assert "match.round " not in output

    def test_missing_file_exits_nonzero(self, tmp_path, capsys):
        code = main(["trace", str(tmp_path / "absent.jsonl")])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "absent.jsonl" in err

    def test_report_head_is_alias_for_bare_file(self, trace_file, capsys):
        assert main(["trace", str(trace_file)]) == 0
        bare = capsys.readouterr().out
        assert main(["trace", "report", str(trace_file)]) == 0
        assert capsys.readouterr().out == bare

    def test_report_top_ranks_by_self_time(self, trace_file, capsys):
        assert main(["trace", "report", str(trace_file), "--top", "3"]) == 0
        output = capsys.readouterr().out
        assert "self time" in output
        assert "self ms" in output
        lines = [
            line for line in output.splitlines()
            if line and not line.startswith(("top", "span", "-"))
        ]
        assert 1 <= len(lines) <= 3
        self_ms = [float(line.split()[2]) for line in lines]
        assert self_ms == sorted(self_ms, reverse=True)

    def test_report_wrong_arity_errors(self, capsys):
        assert main(["trace", "report"]) == 2
        assert "usage" in capsys.readouterr().err


class TestMetricsFlag:
    def test_run_writes_metrics_json(self, tmp_path, capsys):
        path = tmp_path / "run.metrics.json"
        assert main([
            "run", "--ues", "40", "--seed", "1", "--metrics", str(path),
        ]) == 0
        assert f"wrote metrics {path}" in capsys.readouterr().out
        doc = read_metrics(path)
        assert doc.family("dmra_total_profit").sample() > 0
        assert doc.manifest is not None
        assert doc.manifest["seeds"] == [1]
        assert doc.manifest["command"] == "run"

    def test_metrics_and_trace_share_manifest(self, tmp_path, capsys):
        trace_path = tmp_path / "run.jsonl"
        metrics_path = tmp_path / "run.metrics.json"
        assert main([
            "run", "--ues", "40", "--seed", "1",
            "--trace", str(trace_path), "--metrics", str(metrics_path),
        ]) == 0
        trace = read_trace(trace_path)
        doc = read_metrics(metrics_path)
        assert trace.meta["manifest"] == doc.manifest
        # Trace-derived matching diagnostics merge in alongside the
        # outcome-derived families.
        assert doc.has_family("dmra_match_round_proposals")

    def test_prom_suffix_writes_exposition(self, tmp_path, capsys):
        path = tmp_path / "run.prom"
        assert main([
            "run", "--ues", "40", "--seed", "1", "--metrics", str(path),
        ]) == 0
        text = path.read_text()
        assert "# TYPE dmra_total_profit gauge" in text

    def test_online_metrics(self, tmp_path, capsys):
        path = tmp_path / "online.metrics.json"
        assert main([
            "online", "--rate", "1", "--horizon", "60",
            "--metrics", str(path),
        ]) == 0
        doc = read_metrics(path)
        arrivals = doc.family("dmra_online_arrivals_total").sample()
        assert arrivals >= 0


class TestTraceMetricsSubcommand:
    @pytest.fixture()
    def trace_file(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        main(["run", "--ues", "40", "--seed", "1", "--trace", str(path)])
        capsys.readouterr()
        return path

    def test_json_to_stdout(self, trace_file, capsys):
        assert main(["trace", "metrics", str(trace_file)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "dmra.metrics/1"

    def test_prom_format(self, trace_file, capsys):
        assert main([
            "trace", "metrics", str(trace_file), "--format", "prom",
        ]) == 0
        assert "# TYPE" in capsys.readouterr().out

    def test_out_file(self, trace_file, tmp_path, capsys):
        target = tmp_path / "derived.json"
        assert main([
            "trace", "metrics", str(trace_file), "--out", str(target),
        ]) == 0
        assert read_metrics(target).has_family("dmra_match_accepted_total")


class TestTraceDiffSubcommand:
    def metrics_for(self, tmp_path, name, seed="1", rho=None):
        """Run the allocator and capture its metrics document."""
        path = tmp_path / name
        argv = ["run", "--ues", "40", "--seed", seed,
                "--metrics", str(path)]
        if rho is not None:
            argv += ["--rho", rho]
        assert main(argv) == 0
        return path

    def test_same_run_diffs_clean(self, tmp_path, capsys):
        a = self.metrics_for(tmp_path, "a.json")
        b = self.metrics_for(tmp_path, "b.json")
        capsys.readouterr()
        assert main(["trace", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "verdict: OK" in out

    def test_injected_regression_fails(self, tmp_path, capsys):
        a = self.metrics_for(tmp_path, "a.json")
        b = tmp_path / "b.json"
        payload = json.loads(a.read_text())
        for family in payload["families"]:
            if family["name"] == "dmra_total_profit":
                family["samples"][0]["value"] *= 0.5
        b.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["trace", "diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSIONS" in out
        assert "dmra_total_profit" in out

    def test_mismatched_configs_gate_without_allow_flag(
        self, tmp_path, capsys
    ):
        a = self.metrics_for(tmp_path, "a.json", rho="10")
        b = self.metrics_for(tmp_path, "b.json", rho="12")
        capsys.readouterr()
        assert main(["trace", "diff", str(a), str(b)]) == 1
        assert "not comparable" in capsys.readouterr().out

    def test_allow_mismatch_reports_changes(self, tmp_path, capsys):
        a = self.metrics_for(tmp_path, "a.json", rho="10")
        b = self.metrics_for(tmp_path, "b.json", rho="12")
        capsys.readouterr()
        assert main([
            "trace", "diff", str(a), str(b), "--allow-mismatch",
        ]) == 0
        out = capsys.readouterr().out
        assert "rho" in out
        assert "verdict: OK" in out

    def test_rel_tolerance_flag(self, tmp_path, capsys):
        a = self.metrics_for(tmp_path, "a.json")
        b = tmp_path / "b.json"
        payload = json.loads(a.read_text())
        for family in payload["families"]:
            if family["name"] == "dmra_total_profit":
                family["samples"][0]["value"] *= 1.0001
        b.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["trace", "diff", str(a), str(b)]) == 1
        assert main([
            "trace", "diff", str(a), str(b), "--rel-tol", "0.01",
        ]) == 0

    def test_diff_accepts_raw_traces(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        main(["run", "--ues", "40", "--seed", "1", "--trace", str(path)])
        capsys.readouterr()
        assert main(["trace", "diff", str(path), str(path)]) == 0
        assert "verdict: OK" in capsys.readouterr().out


class TestDegenerateInputs:
    """Empty, truncated, and wrong-version files must fail cleanly:
    exit 2, an ``error:`` line on stderr, and no traceback."""

    def check(self, capsys, argv, *needles):
        code = main(argv)
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err
        for needle in needles:
            assert needle in err
        return err

    def test_empty_trace_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        self.check(capsys, ["trace", str(empty)], "empty")
        self.check(capsys, ["trace", "metrics", str(empty)], "empty.jsonl")
        self.check(
            capsys, ["trace", "diff", str(empty), str(empty)],
            "empty.jsonl",
        )

    def test_truncated_trace_file(self, tmp_path, capsys):
        whole = tmp_path / "run.jsonl"
        main(["run", "--ues", "40", "--seed", "1", "--trace", str(whole)])
        capsys.readouterr()
        truncated = tmp_path / "truncated.jsonl"
        text = whole.read_text()
        truncated.write_text(text[: len(text) // 2].rsplit("\n", 1)[0]
                             + '\n{"kind": "span", "na')
        self.check(capsys, ["trace", str(truncated)], "malformed JSON")
        self.check(
            capsys, ["trace", "metrics", str(truncated)], "malformed JSON"
        )
        self.check(
            capsys, ["trace", "diff", str(truncated), str(truncated)],
            "malformed JSON",
        )

    def test_unsupported_schema_version(self, tmp_path, capsys):
        future = tmp_path / "future.jsonl"
        future.write_text(
            '{"kind": "header", "schema": "dmra.trace/99", "meta": {}}\n'
        )
        self.check(capsys, ["trace", str(future)], "dmra.trace/99")
        self.check(
            capsys, ["trace", "metrics", str(future)], "dmra.trace/99"
        )

    def test_unsupported_metrics_schema(self, tmp_path, capsys):
        future = tmp_path / "future.json"
        future.write_text('{"schema": "dmra.metrics/99", "families": []}')
        self.check(
            capsys, ["trace", "diff", str(future), str(future)],
            "dmra.metrics/99",
        )

    def test_non_json_file(self, tmp_path, capsys):
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text("this is not a trace\n")
        self.check(capsys, ["trace", str(garbage)], "malformed JSON")
        self.check(
            capsys, ["trace", "metrics", str(garbage)], "garbage.jsonl"
        )

    def test_unknown_subcommand_word(self, tmp_path, capsys):
        err = self.check(capsys, ["trace", "frobnicate"], "frobnicate")
        assert "error:" in err

    def test_diff_wrong_arity(self, capsys):
        code = main(["trace", "diff", "only-one.json"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
