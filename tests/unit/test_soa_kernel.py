"""Unit tests for the SoA matching kernel plumbing.

Covers the pieces the parity property suite does not: kernel selection
(:func:`repro.core.soa.make_matching_engine`), the pluggable segmented-
argmin backend registry, the NaN regression guard across all three
engine implementations, incremental (pre-loaded ledger) runs, and the
segmented-argmin primitive itself against a straight Python loop.
"""

import importlib.util

import numpy as np
import pytest
from conftest import make_tiny_network

from repro.baselines.dcsp import DCSPPolicy
from repro.compute.cru import LedgerPool
from repro.core.dmra import DMRAPolicy
from repro.core.matching import IterativeMatchingEngine, RoundStats
from repro.core.matching_reference import ReferenceMatchingEngine
from repro.core.soa import (
    KERNELS,
    SoAMatchingEngine,
    _segmented_argmin_numpy,
    available_matching_backends,
    make_matching_engine,
    register_matching_backend,
)
from repro.econ.pricing import FlatPricing, PaperPricing
from repro.errors import AllocationError, ConfigurationError
from repro.radio.channel import build_radio_map
from repro.radio.sinr import LinkBudget


def _tiny():
    network = make_tiny_network(
        ue_specs=[
            dict(ue_id=0),
            dict(ue_id=1, sp_id=1, service_id=1),
            dict(ue_id=2, cru_demand=6),
        ]
    )
    return network, build_radio_map(network, LinkBudget())


class TestKernelSelection:
    def test_object_kernel_returns_reference_engine(self):
        engine = make_matching_engine(
            DMRAPolicy(pricing=PaperPricing()), kernel="object"
        )
        assert isinstance(engine, IterativeMatchingEngine)

    def test_soa_kernel_returns_soa_engine(self):
        engine = make_matching_engine(
            DMRAPolicy(pricing=PaperPricing()), kernel="soa"
        )
        assert isinstance(engine, SoAMatchingEngine)

    def test_auto_selects_soa_for_plain_dmra_policy(self):
        engine = make_matching_engine(
            DMRAPolicy(pricing=PaperPricing()), kernel="auto"
        )
        assert isinstance(engine, SoAMatchingEngine)

    def test_auto_falls_back_for_non_dmra_policy(self):
        engine = make_matching_engine(DCSPPolicy(), kernel="auto")
        assert isinstance(engine, IterativeMatchingEngine)

    def test_auto_falls_back_for_dmra_subclass(self):
        class TweakedDMRA(DMRAPolicy):
            """Overridden hooks cannot be compiled by the SoA kernel."""

        engine = make_matching_engine(
            TweakedDMRA(pricing=PaperPricing()), kernel="auto"
        )
        assert isinstance(engine, IterativeMatchingEngine)

    def test_soa_kernel_rejects_non_dmra_policy(self):
        with pytest.raises(ConfigurationError, match="DMRAPolicy"):
            make_matching_engine(DCSPPolicy(), kernel="soa")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown matching kernel"):
            make_matching_engine(
                DMRAPolicy(pricing=PaperPricing()), kernel="simd"
            )

    def test_kernels_tuple_is_the_cli_contract(self):
        assert KERNELS == ("object", "soa", "auto")

    def test_nonpositive_max_rounds_rejected(self):
        with pytest.raises(AllocationError, match="max_rounds"):
            SoAMatchingEngine(DMRAPolicy(pricing=PaperPricing()), max_rounds=0)

    def test_max_rounds_bound_enforced(self):
        network, radio_map = _tiny()
        engine = SoAMatchingEngine(
            DMRAPolicy(pricing=PaperPricing()), max_rounds=1
        )
        with pytest.raises(AllocationError, match="did not terminate"):
            engine.run(network, radio_map)


class TestBackendRegistry:
    def test_numpy_and_numba_are_registered(self):
        names = available_matching_backends()
        assert "numpy" in names
        assert "numba" in names

    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown matching backend"):
            SoAMatchingEngine(
                DMRAPolicy(pricing=PaperPricing()), backend="cuda"
            )

    @pytest.mark.skipif(
        importlib.util.find_spec("numba") is not None,
        reason="numba installed; the missing-dependency path is moot",
    )
    def test_numba_backend_fails_fast_when_numba_is_missing(self):
        with pytest.raises(ConfigurationError, match="numba"):
            SoAMatchingEngine(
                DMRAPolicy(pricing=PaperPricing()), backend="numba"
            )

    def test_registered_backend_is_used_and_preserves_parity(self):
        calls = []

        def counting_backend():
            def argmin(scores, starts):
                calls.append(scores.size)
                return _segmented_argmin_numpy(scores, starts)

            return argmin

        register_matching_backend("counting", counting_backend)
        try:
            network, radio_map = _tiny()
            baseline = SoAMatchingEngine(
                DMRAPolicy(pricing=PaperPricing())
            ).run(network, radio_map)
            plugged = SoAMatchingEngine(
                DMRAPolicy(pricing=PaperPricing()), backend="counting"
            ).run(network, radio_map)
            assert calls, "registered backend never invoked"
            assert plugged.grants == baseline.grants
            assert plugged.cloud_ue_ids == baseline.cloud_ue_ids
            assert plugged.rounds == baseline.rounds
        finally:
            from repro.core import soa

            soa._MATCHING_BACKENDS.pop("counting", None)


class TestSegmentedArgmin:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_python_loop_with_ties_and_infs(self, seed):
        rng = np.random.default_rng(seed)
        n_segments = int(rng.integers(1, 40))
        counts = rng.integers(1, 12, size=n_segments)
        scores = rng.choice(
            [0.0, 1.0, 2.5, np.inf], size=int(counts.sum())
        ).astype(float)
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        got = _segmented_argmin_numpy(scores, starts)
        bounds = np.append(starts, scores.size)
        for s in range(n_segments):
            lo, hi = int(bounds[s]), int(bounds[s + 1])
            best = lo
            for j in range(lo + 1, hi):
                if scores[j] < scores[best]:
                    best = j
            assert got[s] == best  # first occurrence of the minimum

    def test_all_inf_segment_picks_its_first_index(self):
        scores = np.array([np.inf, np.inf, 3.0, np.inf], dtype=float)
        starts = np.array([0, 2], dtype=np.int64)
        assert _segmented_argmin_numpy(scores, starts).tolist() == [0, 2]


class _NaNPricing:
    def price_per_cru(self, distance_m: float, same_sp: bool) -> float:
        return float("nan")


@pytest.mark.parametrize(
    "engine_cls",
    [IterativeMatchingEngine, ReferenceMatchingEngine, SoAMatchingEngine],
)
def test_nan_score_raises_naming_policy_and_pair(engine_cls):
    """Regression: a NaN preference must fail loudly in every engine,
    naming the policy and the (UE, BS) pair — silent ``min()`` results
    depended on candidate order before."""
    network = make_tiny_network(ue_specs=[dict(ue_id=7)])
    radio_map = build_radio_map(network, LinkBudget())
    engine = engine_cls(DMRAPolicy(pricing=_NaNPricing()))
    with pytest.raises(AllocationError, match="'dmra'.*NaN.*UE 7.*BS") :
        engine.run(network, radio_map)


class TestIncrementalMode:
    """Pre-loaded ledgers + a UE subset: the SoA kernel must honour
    existing grants (born-retired pairs) and leave the shared pool in
    the object engine's exact final state."""

    def _run_two_batches(self, engine_cls):
        network, radio_map = _tiny()
        policy = DMRAPolicy(pricing=PaperPricing())
        pool = LedgerPool(network.base_stations)
        engine = engine_cls(policy)
        first = engine.run(network, radio_map, ledgers=pool, ue_ids=[0, 1])
        second = engine.run(network, radio_map, ledgers=pool, ue_ids=[2])
        state = tuple(
            (g.bs_id, g.ue_id, g.service_id, g.crus, g.rrbs)
            for g in pool.all_grants()
        )
        return first, second, state

    def test_two_batch_run_matches_object_engine(self):
        obj_first, obj_second, obj_state = self._run_two_batches(
            IterativeMatchingEngine
        )
        soa_first, soa_second, soa_state = self._run_two_batches(
            SoAMatchingEngine
        )
        assert soa_first.grants == obj_first.grants
        assert soa_second.grants == obj_second.grants
        assert soa_first.cloud_ue_ids == obj_first.cloud_ue_ids
        assert soa_second.cloud_ue_ids == obj_second.cloud_ue_ids
        assert soa_state == obj_state

    def test_second_batch_reports_only_new_grants(self):
        _, second, state = self._run_two_batches(SoAMatchingEngine)
        assert all(g.ue_id == 2 for g in second.grants)
        assert len(state) == 3  # all three UEs fit the tiny network

    def test_observer_hook_fires_per_round(self):
        network, radio_map = _tiny()
        seen: list[RoundStats] = []
        SoAMatchingEngine(DMRAPolicy(pricing=PaperPricing())).run(
            network, radio_map, observer=seen.append
        )
        assert [s.round_number for s in seen] == list(
            range(1, len(seen) + 1)
        )
        assert sum(s.accepted for s in seen) == 3


@pytest.mark.parametrize(
    "pricing",
    [PaperPricing(), FlatPricing(same_sp_price=4.0, cross_sp_price=9.0)],
)
def test_price_term_fast_paths_match_scalar_pricing(pricing):
    """The vectorized Eq. 9--10 fast paths must equal price_per_cru
    bit for bit — the SoA statics feed the same argmin the object
    engine's cached scalars feed."""
    from repro.core.soa import _price_term_array

    rng = np.random.default_rng(5)
    distances = rng.uniform(0.0, 500.0, size=64)
    same_sp = rng.integers(0, 2, size=64).astype(bool)
    got = _price_term_array(pricing, distances, same_sp)
    expected = [
        pricing.price_per_cru(float(d), bool(s))
        for d, s in zip(distances, same_sp)
    ]
    assert got.tolist() == expected


class TestNumbaBackendParity:
    """Skip-guarded parity for the JIT backend: runs only where the
    optional numba package is installed (the dedicated CI job installs
    it; the default environment skips).  The contract is exact
    agreement with the numpy backend — first index of each segment's
    minimum, +inf scores and ties included."""

    def _backend(self):
        pytest.importorskip("numba")
        from repro.core.soa import _numba_backend_factory

        return _numba_backend_factory()

    def test_segmented_argmin_matches_numpy_backend(self):
        segmented_argmin = self._backend()
        rng = np.random.default_rng(11)
        for _case in range(20):
            segments = rng.integers(1, 9, size=rng.integers(1, 12))
            starts = np.concatenate(([0], np.cumsum(segments)[:-1]))
            scores = rng.uniform(0.0, 100.0, size=int(segments.sum()))
            # Salt in ties and +inf (retired candidates) — the edge
            # cases a naive reduction gets wrong.
            scores[rng.random(scores.size) < 0.2] = np.inf
            scores[rng.random(scores.size) < 0.2] = 42.0
            got = segmented_argmin(scores, starts)
            expected = _segmented_argmin_numpy(scores, starts)
            assert got.tolist() == expected.tolist()

    def test_engine_parity_on_paper_scenario(self):
        pytest.importorskip("numba")
        from repro.sim.config import ScenarioConfig
        from repro.sim.scenario import build_scenario

        scenario = build_scenario(ScenarioConfig.paper(), 150, 4)
        policy = DMRAPolicy(pricing=scenario.pricing)
        numba_run = SoAMatchingEngine(policy, backend="numba").run(
            scenario.network, scenario.radio_map
        )
        numpy_run = SoAMatchingEngine(policy, backend="numpy").run(
            scenario.network, scenario.radio_map
        )
        assert numba_run.grants == numpy_run.grants
        assert numba_run.cloud_ue_ids == numpy_run.cloud_ue_ids
        assert numba_run.rounds == numpy_run.rounds
