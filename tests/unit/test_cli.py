"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCliBasics:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestRunCommand:
    def test_run_dmra(self, capsys):
        assert main(["run", "--ues", "60", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "total profit:" in output
        assert "edge served:" in output
        assert "allocator:          dmra" in output

    def test_run_each_allocator(self, capsys):
        for name in ("dcsp", "nonco", "greedy", "random", "cloud-only"):
            assert main(["run", "--allocator", name, "--ues", "40"]) == 0
            assert "total profit:" in capsys.readouterr().out

    def test_run_with_scenario_options(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--ues", "40",
                    "--placement", "random",
                    "--iota", "1.1",
                    "--rho", "50",
                ]
            )
            == 0
        )
        assert "total profit:" in capsys.readouterr().out


class TestShardedRunCommand:
    def test_run_sharded(self, capsys):
        assert (
            main(["run", "--ues", "120", "--seed", "2", "--shards", "2"])
            == 0
        )
        output = capsys.readouterr().out
        assert "sharded run:        2 shards" in output
        assert "shard UEs:" in output
        assert "shard halo BSs:" in output
        assert "total profit:" in output
        assert "evictions:" in output
        assert "re-proposal:" in output

    def test_run_sharded_profile_prints_phase_table(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--ues", "80",
                    "--shards", "2",
                    "--profile",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "phase" in output
        assert "partition" in output
        assert "reconcile" in output

    def test_sharding_requires_dmra(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(
                [
                    "run",
                    "--ues", "40",
                    "--allocator", "greedy",
                    "--shards", "2",
                ]
            )


class TestInspectCommand:
    def test_inspect_reports_populations(self, capsys):
        assert main(["inspect", "--ues", "40"]) == 0
        output = capsys.readouterr().out
        assert "5 SPs" in output
        assert "25 BSs" in output
        assert "per-SP deployments:" in output
        assert "aggregate capacity:" in output


class TestCompareCommand:
    def test_compare_table(self, capsys):
        assert (
            main(["compare", "--ues", "60", "--allocators", "dmra", "nonco"])
            == 0
        )
        output = capsys.readouterr().out
        assert "dmra" in output and "nonco" in output
        assert "profit" in output


class TestFigureCommand:
    def test_figure_smoke_with_csv(self, capsys, tmp_path):
        assert (
            main(
                [
                    "figure", "fig2",
                    "--scale", "smoke",
                    "--out", str(tmp_path),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "Fig. 2" in output
        assert "legend:" in output
        assert (tmp_path / "fig2.csv").exists()

    def test_figure_unknown_id(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["figure", "fig99", "--scale", "smoke"])


class TestBoundCommand:
    def test_bound_both_methods_with_baselines(self, capsys):
        assert main([
            "bound", "--ues", "60", "--seed", "1",
            "--method", "both", "--baselines", "auction",
        ]) == 0
        output = capsys.readouterr().out
        assert "lp bound:" in output
        assert "lagrangian bound:" in output
        assert "certified gap:" in output
        assert "auction:" in output

    def test_bound_writes_metric_families(self, tmp_path, capsys):
        target = tmp_path / "bound.json"
        assert main([
            "bound", "--ues", "60", "--seed", "1",
            "--metrics", str(target),
        ]) == 0
        capsys.readouterr()
        import json

        document = json.loads(target.read_text())
        names = {family["name"] for family in document["families"]}
        assert "dmra_gap_fraction" in names
        assert "dmra_bound_upper" in names

    def test_run_with_bound_flag(self, capsys):
        assert main([
            "run", "--ues", "60", "--seed", "1",
            "--bound", "lagrangian",
        ]) == 0
        output = capsys.readouterr().out
        assert "upper bound:" in output
        assert "certified gap:" in output

    def test_run_each_strategic_baseline(self, capsys):
        for name in ("best-response", "potential-game", "auction"):
            assert main(["run", "--allocator", name, "--ues", "40"]) == 0
            assert "total profit:" in capsys.readouterr().out
