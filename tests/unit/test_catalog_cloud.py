"""Unit tests for the service catalog and the remote cloud sink."""

import numpy as np
import pytest

from repro.compute.catalog import ServiceCatalog
from repro.compute.cloud import RemoteCloud
from repro.errors import ConfigurationError
from repro.model.entities import UserEquipment
from repro.model.geometry import Point


class TestServiceCatalog:
    def test_build_services(self):
        services = ServiceCatalog(service_count=6).build_services()
        assert [s.service_id for s in services] == list(range(6))
        assert all(s.name for s in services)

    def test_sample_hosting_full_fraction(self, rng):
        catalog = ServiceCatalog(service_count=6, hosted_fraction=1.0)
        hosting = catalog.sample_hosting(rng)
        assert set(hosting) == set(range(6))
        assert all(100 <= c <= 150 for c in hosting.values())

    def test_sample_hosting_partial_fraction(self, rng):
        catalog = ServiceCatalog(service_count=6, hosted_fraction=0.5)
        hosting = catalog.sample_hosting(rng)
        assert len(hosting) == 3
        assert set(hosting) <= set(range(6))

    def test_at_least_one_service_hosted(self, rng):
        catalog = ServiceCatalog(service_count=6, hosted_fraction=0.01)
        assert len(catalog.sample_hosting(rng)) == 1

    def test_capacity_bounds_inclusive(self):
        catalog = ServiceCatalog(
            service_count=1, cru_capacity_min=5, cru_capacity_max=5
        )
        hosting = catalog.sample_hosting(np.random.default_rng(0))
        assert hosting == {0: 5}

    def test_sampling_is_seed_deterministic(self):
        catalog = ServiceCatalog()
        a = catalog.sample_hosting(np.random.default_rng(3))
        b = catalog.sample_hosting(np.random.default_rng(3))
        assert a == b

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ServiceCatalog(service_count=0)
        with pytest.raises(ConfigurationError):
            ServiceCatalog(cru_capacity_min=0)
        with pytest.raises(ConfigurationError):
            ServiceCatalog(cru_capacity_min=10, cru_capacity_max=5)
        with pytest.raises(ConfigurationError):
            ServiceCatalog(hosted_fraction=0.0)
        with pytest.raises(ConfigurationError):
            ServiceCatalog(hosted_fraction=1.5)


def make_ue(ue_id=0, sp_id=0, crus=4, rate=3e6):
    return UserEquipment(
        ue_id=ue_id,
        sp_id=sp_id,
        position=Point(0, 0),
        service_id=0,
        cru_demand=crus,
        rate_demand_bps=rate,
    )


class TestRemoteCloud:
    def test_forward_records_task(self):
        cloud = RemoteCloud()
        task = cloud.forward(make_ue(ue_id=3, crus=5, rate=4e6))
        assert task.ue_id == 3
        assert cloud.task_count == 1
        assert cloud.forwarded_ue_ids == {3}
        assert cloud.forwarded_traffic_bps == pytest.approx(4e6)
        assert cloud.forwarded_crus == 5

    def test_double_forward_rejected(self):
        cloud = RemoteCloud()
        cloud.forward(make_ue(ue_id=3))
        with pytest.raises(ConfigurationError):
            cloud.forward(make_ue(ue_id=3))

    def test_traffic_accumulates(self):
        cloud = RemoteCloud()
        cloud.forward(make_ue(ue_id=1, rate=2e6))
        cloud.forward(make_ue(ue_id=2, rate=6e6))
        assert cloud.forwarded_traffic_bps == pytest.approx(8e6)

    def test_tasks_of_sp_filters(self):
        cloud = RemoteCloud()
        cloud.forward(make_ue(ue_id=1, sp_id=0))
        cloud.forward(make_ue(ue_id=2, sp_id=1))
        cloud.forward(make_ue(ue_id=3, sp_id=0))
        assert {t.ue_id for t in cloud.tasks_of_sp(0)} == {1, 3}
        assert {t.ue_id for t in cloud.tasks_of_sp(1)} == {2}
        assert cloud.tasks_of_sp(9) == ()

    def test_empty_cloud(self):
        cloud = RemoteCloud()
        assert cloud.task_count == 0
        assert cloud.forwarded_traffic_bps == 0.0
        assert cloud.forwarded_crus == 0
