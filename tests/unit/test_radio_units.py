"""Unit tests for dB/linear unit conversions."""

import math

import pytest

from repro.radio.units import (
    db_to_linear,
    dbm_to_mw,
    khz,
    linear_to_db,
    mbps,
    mhz,
    mw_to_dbm,
)


class TestPowerConversions:
    def test_known_dbm_values(self):
        assert dbm_to_mw(0.0) == pytest.approx(1.0)
        assert dbm_to_mw(10.0) == pytest.approx(10.0)
        assert dbm_to_mw(30.0) == pytest.approx(1000.0)
        assert dbm_to_mw(-30.0) == pytest.approx(0.001)

    def test_dbm_round_trip(self):
        for dbm in (-170.0, -121.4, 0.0, 10.0, 46.0):
            assert mw_to_dbm(dbm_to_mw(dbm)) == pytest.approx(dbm)

    def test_mw_to_dbm_rejects_non_positive(self):
        with pytest.raises(ValueError):
            mw_to_dbm(0.0)
        with pytest.raises(ValueError):
            mw_to_dbm(-1.0)

    def test_paper_noise_floor(self):
        """The paper's −170 dBm noise is 1e-17 mW."""
        assert dbm_to_mw(-170.0) == pytest.approx(1e-17)


class TestRatioConversions:
    def test_known_db_values(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)
        assert db_to_linear(3.0) == pytest.approx(1.995, rel=1e-3)
        assert db_to_linear(20.0) == pytest.approx(100.0)

    def test_db_round_trip(self):
        for db in (-40.0, -3.0, 0.0, 12.5, 140.7):
            assert linear_to_db(db_to_linear(db)) == pytest.approx(db)

    def test_linear_to_db_rejects_non_positive(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)

    def test_db_addition_is_linear_multiplication(self):
        assert db_to_linear(13.0) == pytest.approx(
            db_to_linear(10.0) * db_to_linear(3.0)
        )


class TestMagnitudeHelpers:
    def test_mbps(self):
        assert mbps(2.0) == 2e6

    def test_mhz(self):
        assert mhz(10.0) == 10e6

    def test_khz(self):
        assert khz(180.0) == pytest.approx(180e3)

    def test_paper_rrb_count_from_units(self):
        assert math.floor(mhz(10) / khz(180)) == 55
