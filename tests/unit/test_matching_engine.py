"""Unit tests for the iterative matching engine (Alg. 1 skeleton).

Uses a minimal deterministic policy so engine mechanics — proposal
walks, per-service selection, RRB eviction, cloud fallback, termination
— can be asserted precisely on hand-built networks.
"""

import pytest

from conftest import make_tiny_network
from repro.core.matching import (
    IterativeMatchingEngine,
    MatchingContext,
    MatchingPolicy,
)
from repro.errors import AllocationError
from repro.model.geometry import Point
from repro.radio.channel import build_radio_map
from repro.radio.sinr import LinkBudget


class NearestPolicy(MatchingPolicy):
    """UEs prefer the closest BS; BSs prefer the lowest UE id."""

    name = "nearest"

    def ue_score(self, ue, bs_id, ctx):
        return ctx.network.distance_m(ue.ue_id, bs_id)

    def bs_rank_key(self, ue_id, bs_id, ctx):
        return (ue_id,)


def run_engine(network, policy=None, max_rounds=1000):
    radio_map = build_radio_map(network, LinkBudget())
    engine = IterativeMatchingEngine(
        policy if policy is not None else NearestPolicy(), max_rounds=max_rounds
    )
    assignment = engine.run(network, radio_map)
    assignment.validate(network, radio_map)
    return assignment


class TestBasicMatching:
    def test_single_ue_gets_nearest_bs(self):
        assignment = run_engine(make_tiny_network())
        assert assignment.serving_bs(0) == 0
        assert assignment.cloud_count == 0

    def test_unreachable_ue_goes_to_cloud(self):
        network = make_tiny_network(
            ue_specs=[dict(ue_id=0, position=Point(1200.0, 1200.0))],
            coverage_radius_m=200.0,
        )
        assignment = run_engine(network)
        assert assignment.cloud_ue_ids == {0}

    def test_two_ues_share_a_bs_when_it_fits(self):
        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=0, position=Point(100, 0)),
                dict(ue_id=1, position=Point(90, 0), service_id=1),
            ]
        )
        assignment = run_engine(network)
        assert assignment.serving_bs(0) == 0
        assert assignment.serving_bs(1) == 0

    def test_one_per_service_per_round(self):
        """Two same-service UEs at one BS need two rounds: the BS accepts
        one candidate per service per round (Alg. 1 lines 13--21)."""
        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=0, position=Point(100, 0)),
                dict(ue_id=1, position=Point(90, 0)),
            ]
        )
        assignment = run_engine(network)
        assert assignment.edge_served_count == 2
        assert assignment.rounds == 2  # one grant per round, probe not counted


class TestRoundSemantics:
    """``Assignment.rounds`` counts *productive* rounds.

    Regression for the historical off-by-one: the engine used to count
    the terminating no-proposal probe round, so an N-round convergence
    reported N+1.
    """

    def test_single_ue_converges_in_one_round(self):
        assignment = run_engine(make_tiny_network())
        assert assignment.rounds == 1

    def test_unreachable_population_reports_zero_rounds(self):
        network = make_tiny_network(
            ue_specs=[dict(ue_id=0, position=Point(1200.0, 1200.0))],
            coverage_radius_m=200.0,
        )
        assignment = run_engine(network)
        assert assignment.rounds == 0

    def test_empty_population_reports_zero_rounds(self):
        assignment = run_engine(make_tiny_network(ue_specs=[]))
        assert assignment.rounds == 0

    def test_observer_sees_probe_round_but_rounds_excludes_it(self):
        """The observer still receives the terminating zero-proposal
        round (it can carry newly_cloud info); only the count changes."""
        from repro.core.matching import IterativeMatchingEngine

        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=0, position=Point(100, 0)),
                dict(ue_id=1, position=Point(90, 0)),
            ]
        )
        radio_map = build_radio_map(network, LinkBudget())
        seen = []
        engine = IterativeMatchingEngine(NearestPolicy())
        assignment = engine.run(network, radio_map, observer=seen.append)
        assert len(seen) == assignment.rounds + 1
        assert seen[-1].proposals == 0
        assert all(stats.proposals > 0 for stats in seen[:-1])

    def test_round_stats_carry_phase_times(self):
        from repro.core.matching import IterativeMatchingEngine

        network = make_tiny_network()
        radio_map = build_radio_map(network, LinkBudget())
        seen = []
        engine = IterativeMatchingEngine(NearestPolicy())
        engine.run(network, radio_map, observer=seen.append)
        assert all(stats.propose_time_s >= 0.0 for stats in seen)
        assert all(stats.accept_time_s >= 0.0 for stats in seen)


class TestResourceExhaustion:
    def test_cru_exhaustion_spills_to_other_bs(self):
        # Service 0 has 20 CRUs at each BS; three 8-CRU UEs near BS 0.
        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=i, cru_demand=8, position=Point(50.0 + i, 0.0))
                for i in range(3)
            ]
        )
        assignment = run_engine(network)
        assert assignment.edge_served_count == 3
        by_bs = {bs: len(assignment.grants_of_bs(bs)) for bs in (0, 1)}
        assert by_bs[0] == 2 and by_bs[1] == 1

    def test_everything_full_goes_to_cloud(self):
        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=i, cru_demand=19, position=Point(50.0 + i, 0.0))
                for i in range(3)
            ]
        )
        assignment = run_engine(network)
        assert assignment.edge_served_count == 2  # one per BS
        assert assignment.cloud_count == 1

    def test_rrb_exhaustion_respected(self):
        # Each UE needs 2 RRBs (6 Mbps) on a 3-RRB budget: only one fits
        # per BS.
        network = make_tiny_network(
            ue_specs=[
                dict(
                    ue_id=i,
                    rate_demand_bps=6e6,
                    position=Point(50.0 + i, 0.0),
                    service_id=i % 2,
                )
                for i in range(4)
            ],
            bs_specs=[
                dict(bs_id=0, sp_id=0, position=Point(0, 0), rrb_capacity=3),
                dict(bs_id=1, sp_id=1, position=Point(400, 0), rrb_capacity=3),
            ],
        )
        assignment = run_engine(network)
        for bs_id in (0, 1):
            used = sum(g.rrbs for g in assignment.grants_of_bs(bs_id))
            assert used <= 3


class TestEviction:
    def test_round_eviction_keeps_most_preferred(self):
        """Two different-service UEs picked in one round exceed the RRB
        budget; the BS must keep its preferred pick (lower ue_id under
        NearestPolicy) and evict the other."""
        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=0, rate_demand_bps=6e6, position=Point(50, 0)),
                dict(
                    ue_id=1,
                    rate_demand_bps=6e6,
                    position=Point(60, 0),
                    service_id=1,
                ),
            ],
            bs_specs=[
                dict(bs_id=0, sp_id=0, position=Point(0, 0), rrb_capacity=2),
                dict(bs_id=1, sp_id=1, position=Point(400, 0), rrb_capacity=2),
            ],
        )
        # Each UE needs 2 RRBs at ~50 m; together 4 > 2.
        assignment = run_engine(network)
        assert assignment.serving_bs(0) == 0
        # UE 1 was evicted in round 1 but reassigned later (BS 0 is full,
        # so it lands on BS 1).
        assert assignment.serving_bs(1) == 1


class TestTermination:
    def test_rounds_bounded_on_paper_scenario(self, small_scenario):
        engine = IterativeMatchingEngine(NearestPolicy())
        assignment = engine.run(
            small_scenario.network, small_scenario.radio_map
        )
        assert assignment.rounds < 100

    def test_max_rounds_guard_triggers(self):
        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=0, position=Point(100, 0)),
                dict(ue_id=1, position=Point(90, 0)),
            ]
        )
        radio_map = build_radio_map(network, LinkBudget())
        engine = IterativeMatchingEngine(NearestPolicy(), max_rounds=1)
        with pytest.raises(AllocationError, match="terminate"):
            engine.run(network, radio_map)

    def test_invalid_max_rounds(self):
        with pytest.raises(AllocationError):
            IterativeMatchingEngine(NearestPolicy(), max_rounds=0)

    def test_empty_network_terminates_immediately(self):
        network = make_tiny_network(ue_specs=[])
        assignment = run_engine(network)
        assert assignment.edge_served_count == 0
        assert assignment.cloud_count == 0


class TestContextHelpers:
    def test_feasible_bs_count_shrinks_with_load(self):
        network = make_tiny_network(
            ue_specs=[dict(ue_id=0, cru_demand=15, position=Point(100, 0))]
        )
        radio_map = build_radio_map(network, LinkBudget())
        from repro.compute.cru import LedgerPool

        ctx = MatchingContext(
            network=network,
            radio_map=radio_map,
            ledgers=LedgerPool(network.base_stations),
            candidate_sets={0: [0, 1]},
        )
        assert ctx.feasible_bs_count(0) == 2
        # Exhaust service 0 on BS 0 below the UE's 15-CRU demand.
        ctx.ledgers.ledger(0).grant(ue_id=9, service_id=0, crus=10, rrbs=1)
        assert ctx.feasible_bs_count(0) == 1

    def test_link_fits_checks_both_resources(self, tiny_network):
        radio_map = build_radio_map(tiny_network, LinkBudget())
        from repro.compute.cru import LedgerPool

        ctx = MatchingContext(
            network=tiny_network,
            radio_map=radio_map,
            ledgers=LedgerPool(tiny_network.base_stations),
            candidate_sets={0: [0, 1]},
        )
        ue = tiny_network.user_equipment(0)
        assert ctx.link_fits(ue, 0)
        ledger = ctx.ledgers.ledger(0)
        ledger.grant(ue_id=9, service_id=0, crus=17, rrbs=1)  # 3 CRUs < 4 left
        assert not ctx.link_fits(ue, 0)
