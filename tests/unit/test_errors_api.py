"""Unit tests for the exception hierarchy and the public API surface."""

import pytest

import repro
from repro.errors import (
    AllocationError,
    CapacityError,
    ConfigurationError,
    InfeasibleLinkError,
    ReproError,
    TariffViolationError,
    UnknownEntityError,
)


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for error_type in (
            ConfigurationError,
            CapacityError,
            UnknownEntityError,
            InfeasibleLinkError,
            TariffViolationError,
            AllocationError,
        ):
            assert issubclass(error_type, ReproError)

    def test_repro_error_is_exception(self):
        assert issubclass(ReproError, Exception)

    def test_catch_all_pattern(self):
        with pytest.raises(ReproError):
            raise CapacityError("x")


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_surface(self):
        """The names the README quickstart uses must exist at top level."""
        for name in (
            "DMRAAllocator",
            "DCSPAllocator",
            "NonCoAllocator",
            "ScenarioConfig",
            "build_scenario",
            "run_allocation",
        ):
            assert hasattr(repro, name)

    def test_allocator_names_are_distinct(self):
        names = {
            repro.DMRAAllocator().name,
            repro.DCSPAllocator().name,
            repro.NonCoAllocator().name,
            repro.GreedyProfitAllocator().name,
            repro.RandomAllocator().name,
            repro.CloudOnlyAllocator().name,
            repro.OptimalILPAllocator().name,
        }
        assert len(names) == 7
