"""Unit tests for the analysis package (fairness, convergence, stability,
network maps)."""

import pytest

from conftest import make_tiny_network
from repro.analysis.convergence import trace_convergence
from repro.analysis.fairness import fairness_report, jain_index
from repro.analysis.netmap import render_network_map
from repro.analysis.stability import analyze_stability
from repro.baselines.nonco import NonCoAllocator
from repro.core.dmra import DMRAAllocator, DMRAPolicy
from repro.errors import ConfigurationError
from repro.model.geometry import Point
from repro.radio.channel import build_radio_map
from repro.radio.sinr import LinkBudget


class TestJainIndex:
    def test_equal_values_are_perfectly_fair(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_taker_is_1_over_n(self):
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_defined_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_scale_invariant(self):
        values = [1.0, 2.0, 3.0]
        assert jain_index(values) == pytest.approx(
            jain_index([10 * v for v in values])
        )

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            jain_index([])
        with pytest.raises(ConfigurationError):
            jain_index([1.0, -1.0])


class TestFairnessReport:
    def test_report_fields(self, small_scenario):
        from repro.sim.runner import run_allocation

        outcome = run_allocation(
            small_scenario, DMRAAllocator(pricing=small_scenario.pricing)
        )
        report = fairness_report(
            small_scenario.network, outcome.metrics.profit_by_sp
        )
        assert 0.0 < report.jain <= 1.0
        assert 0.0 < report.jain_per_subscriber <= 1.0
        assert report.min_sp_profit <= report.max_sp_profit
        assert report.total_profit == pytest.approx(
            outcome.metrics.total_profit
        )
        assert report.max_min_ratio >= 1.0

    def test_empty_mapping_rejected(self, small_scenario):
        with pytest.raises(ConfigurationError):
            fairness_report(small_scenario.network, {})

    def test_zero_profit_sp_gives_infinite_ratio(self, tiny_network):
        report = fairness_report(tiny_network, {0: 10.0, 1: 0.0})
        assert report.max_min_ratio == float("inf")


class TestConvergenceTrace:
    def test_trace_totals_match_assignment(self, small_scenario):
        trace = trace_convergence(
            DMRAPolicy(pricing=small_scenario.pricing),
            small_scenario.network,
            small_scenario.radio_map,
        )
        assert trace.total_accepted == trace.assignment.edge_served_count
        assert trace.round_count == trace.assignment.rounds
        assert trace.total_proposals >= trace.total_accepted

    def test_acceptance_curve_monotone(self, small_scenario):
        trace = trace_convergence(
            DMRAPolicy(pricing=small_scenario.pricing),
            small_scenario.network,
            small_scenario.radio_map,
        )
        curve = trace.acceptance_curve()
        values = [v for _, v in curve]
        assert values == sorted(values)
        assert values[-1] == trace.total_accepted

    def test_rounds_to_fraction(self, small_scenario):
        trace = trace_convergence(
            DMRAPolicy(pricing=small_scenario.pricing),
            small_scenario.network,
            small_scenario.radio_map,
        )
        half = trace.rounds_to_fraction(0.5)
        full = trace.rounds_to_fraction(1.0)
        assert 1 <= half <= full <= trace.round_count
        with pytest.raises(ConfigurationError):
            trace.rounds_to_fraction(0.0)
        with pytest.raises(ConfigurationError):
            trace.rounds_to_fraction(1.5)

    def test_overhead_ratio(self, small_scenario):
        trace = trace_convergence(
            DMRAPolicy(pricing=small_scenario.pricing),
            small_scenario.network,
            small_scenario.radio_map,
        )
        assert trace.proposals_per_association >= 1.0


class TestStability:
    def test_dmra_is_envy_free_and_unstranded(self, loaded_scenario):
        assignment = DMRAAllocator(
            pricing=loaded_scenario.pricing
        ).allocate(loaded_scenario.network, loaded_scenario.radio_map)
        report = analyze_stability(
            loaded_scenario.network,
            loaded_scenario.radio_map,
            assignment,
            loaded_scenario.pricing,
        )
        assert report.is_envy_free
        assert not report.has_stranded_demand

    def test_nonco_strands_demand_under_load(self, loaded_scenario):
        assignment = NonCoAllocator().allocate(
            loaded_scenario.network, loaded_scenario.radio_map
        )
        report = analyze_stability(
            loaded_scenario.network,
            loaded_scenario.radio_map,
            assignment,
            loaded_scenario.pricing,
        )
        assert report.has_stranded_demand
        assert report.stranded_count > 0

    def test_detects_manufactured_envy(self):
        """A UE parked on the far cross-SP BS while the near same-SP BS
        is free must register as an envy pair."""
        network = make_tiny_network()
        radio_map = build_radio_map(network, LinkBudget())
        from repro.compute.cru import Grant
        from repro.core.assignment import Assignment

        bad = Assignment(
            grants=(
                Grant(
                    bs_id=1,
                    ue_id=0,
                    service_id=0,
                    crus=4,
                    rrbs=radio_map.link(0, 1).rrbs_required,
                ),
            ),
            cloud_ue_ids=frozenset(),
        )
        from repro.econ.pricing import PaperPricing

        report = analyze_stability(
            network, radio_map, bad, PaperPricing()
        )
        assert report.envy_count == 1
        pair = report.envy_pairs[0]
        assert pair.better_bs_id == 0
        assert pair.saving > 0

    def test_envy_fraction_bounds(self, small_scenario):
        assignment = DMRAAllocator(
            pricing=small_scenario.pricing
        ).allocate(small_scenario.network, small_scenario.radio_map)
        report = analyze_stability(
            small_scenario.network,
            small_scenario.radio_map,
            assignment,
            small_scenario.pricing,
        )
        assert 0.0 <= report.envy_fraction <= 1.0


class TestNetworkMap:
    def test_map_contains_all_sps(self, small_scenario):
        text = render_network_map(small_scenario.network)
        for sp_digit in "01234":
            assert sp_digit in text

    def test_map_marks_associations(self, small_scenario):
        assignment = DMRAAllocator(
            pricing=small_scenario.pricing
        ).allocate(small_scenario.network, small_scenario.radio_map)
        text = render_network_map(small_scenario.network, assignment)
        assert "*" in text
        assert "legend" not in text  # legend line uses explicit wording
        assert "edge-served" in text

    def test_map_size(self, small_scenario):
        text = render_network_map(
            small_scenario.network, width=30, height=10
        )
        body = text.splitlines()[1:-1]
        assert len(body) == 10
        assert all(len(line) == 30 for line in body)

    def test_invalid_size_rejected(self, small_scenario):
        with pytest.raises(ConfigurationError):
            render_network_map(small_scenario.network, width=5, height=5)

    def test_cloud_marker_under_overload(self, loaded_scenario):
        assignment = NonCoAllocator().allocate(
            loaded_scenario.network, loaded_scenario.radio_map
        )
        text = render_network_map(loaded_scenario.network, assignment)
        assert "c" in text.splitlines()[3]  # some cloud cell in the body
