"""Unit tests for UE workload generation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.model.geometry import Point
from repro.model.workload import WorkloadModel, generate_user_equipments


class TestWorkloadModel:
    def test_paper_defaults(self):
        model = WorkloadModel()
        assert model.cru_demand_min == 3
        assert model.cru_demand_max == 5
        assert model.rate_demand_min_bps == 2e6
        assert model.rate_demand_max_bps == 6e6
        assert model.tx_power_dbm == 10.0

    def test_cru_draws_within_inclusive_bounds(self, rng):
        model = WorkloadModel()
        draws = {model.draw_cru_demand(rng) for _ in range(500)}
        assert draws == {3, 4, 5}

    def test_rate_draws_within_bounds(self, rng):
        model = WorkloadModel()
        for _ in range(200):
            rate = model.draw_rate_demand_bps(rng)
            assert 2e6 <= rate <= 6e6

    def test_uniform_service_draws_cover_catalog(self, rng):
        model = WorkloadModel()
        draws = {model.draw_service(6, rng) for _ in range(500)}
        assert draws == set(range(6))

    def test_service_popularity_skews_draws(self, rng):
        model = WorkloadModel(service_popularity=(1.0, 0.0, 0.0))
        draws = {model.draw_service(3, rng) for _ in range(100)}
        assert draws == {0}

    def test_popularity_length_mismatch_rejected(self, rng):
        model = WorkloadModel(service_popularity=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            model.draw_service(6, rng)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadModel(cru_demand_min=0)
        with pytest.raises(ConfigurationError):
            WorkloadModel(cru_demand_min=5, cru_demand_max=3)
        with pytest.raises(ConfigurationError):
            WorkloadModel(rate_demand_min_bps=0.0)
        with pytest.raises(ConfigurationError):
            WorkloadModel(rate_demand_min_bps=6e6, rate_demand_max_bps=2e6)
        with pytest.raises(ConfigurationError):
            WorkloadModel(service_popularity=(-1.0, 2.0))
        with pytest.raises(ConfigurationError):
            WorkloadModel(service_popularity=())

    def test_invalid_service_count_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            WorkloadModel().draw_service(0, rng)


class TestGenerateUserEquipments:
    def positions(self, count=10):
        return [Point(float(i), 0.0) for i in range(count)]

    def test_generates_one_ue_per_position(self, rng):
        ues = generate_user_equipments(
            self.positions(10), sp_count=5, service_count=6,
            workload=WorkloadModel(), rng=rng,
        )
        assert len(ues) == 10
        assert [ue.ue_id for ue in ues] == list(range(10))
        assert [ue.position for ue in ues] == self.positions(10)

    def test_start_id_offset(self, rng):
        ues = generate_user_equipments(
            self.positions(3), sp_count=2, service_count=2,
            workload=WorkloadModel(), rng=rng, start_ue_id=100,
        )
        assert [ue.ue_id for ue in ues] == [100, 101, 102]

    def test_fields_within_distributions(self, rng):
        ues = generate_user_equipments(
            self.positions(200), sp_count=5, service_count=6,
            workload=WorkloadModel(), rng=rng,
        )
        assert {ue.sp_id for ue in ues} == set(range(5))
        assert {ue.service_id for ue in ues} == set(range(6))
        assert all(3 <= ue.cru_demand <= 5 for ue in ues)
        assert all(2e6 <= ue.rate_demand_bps <= 6e6 for ue in ues)

    def test_seed_determinism(self):
        kwargs = dict(
            positions=self.positions(20), sp_count=5, service_count=6,
            workload=WorkloadModel(),
        )
        a = generate_user_equipments(rng=np.random.default_rng(1), **kwargs)
        b = generate_user_equipments(rng=np.random.default_rng(1), **kwargs)
        assert a == b

    def test_invalid_sp_count_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            generate_user_equipments(
                self.positions(1), sp_count=0, service_count=6,
                workload=WorkloadModel(), rng=rng,
            )
