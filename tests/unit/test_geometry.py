"""Unit tests for planar geometry primitives."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.model.geometry import Point, Rectangle, distance_m, pairwise_distances_m


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-3.0, 7.25)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_distance_to_self_is_zero(self):
        p = Point(12.0, -8.0)
        assert p.distance_to(p) == 0.0

    def test_translated_shifts_coordinates(self):
        assert Point(1.0, 2.0).translated(3.0, -1.0) == Point(4.0, 1.0)

    def test_as_tuple(self):
        assert Point(2.0, 9.0).as_tuple() == (2.0, 9.0)

    def test_points_are_hashable_and_comparable(self):
        assert Point(1, 2) == Point(1, 2)
        assert len({Point(1, 2), Point(1, 2), Point(3, 4)}) == 2


class TestRectangle:
    def test_square_constructor(self):
        square = Rectangle.square(1200.0)
        assert square.width == 1200.0
        assert square.height == 1200.0
        assert square.area == pytest.approx(1200.0**2)

    def test_square_rejects_non_positive_side(self):
        with pytest.raises(ConfigurationError):
            Rectangle.square(0.0)

    def test_degenerate_rectangle_rejected(self):
        with pytest.raises(ConfigurationError):
            Rectangle(0.0, 0.0, 0.0, 10.0)
        with pytest.raises(ConfigurationError):
            Rectangle(0.0, 5.0, 10.0, 5.0)

    def test_center(self):
        rect = Rectangle(0.0, 0.0, 10.0, 20.0)
        assert rect.center == Point(5.0, 10.0)

    def test_contains_includes_borders(self):
        rect = Rectangle(0.0, 0.0, 10.0, 10.0)
        assert rect.contains(Point(0.0, 0.0))
        assert rect.contains(Point(10.0, 10.0))
        assert rect.contains(Point(5.0, 5.0))
        assert not rect.contains(Point(10.01, 5.0))
        assert not rect.contains(Point(-0.01, 5.0))

    def test_sample_uniform_stays_inside(self, rng):
        rect = Rectangle(100.0, 200.0, 300.0, 350.0)
        points = rect.sample_uniform(rng, 500)
        assert len(points) == 500
        assert all(rect.contains(p) for p in points)

    def test_sample_uniform_zero_count(self, rng):
        assert Rectangle.square(10.0).sample_uniform(rng, 0) == []

    def test_sample_uniform_negative_count_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            Rectangle.square(10.0).sample_uniform(rng, -1)

    def test_sample_uniform_is_seed_deterministic(self):
        rect = Rectangle.square(100.0)
        a = rect.sample_uniform(np.random.default_rng(5), 20)
        b = rect.sample_uniform(np.random.default_rng(5), 20)
        assert a == b


class TestDistances:
    def test_distance_m_matches_method(self):
        a, b = Point(0, 0), Point(6, 8)
        assert distance_m(a, b) == pytest.approx(10.0)

    def test_pairwise_shape_and_values(self):
        sources = [Point(0, 0), Point(0, 10)]
        targets = [Point(3, 4), Point(0, 0), Point(-6, -8)]
        matrix = pairwise_distances_m(sources, targets)
        assert matrix.shape == (2, 3)
        assert matrix[0, 0] == pytest.approx(5.0)
        assert matrix[0, 1] == pytest.approx(0.0)
        assert matrix[0, 2] == pytest.approx(10.0)
        assert matrix[1, 1] == pytest.approx(10.0)

    def test_pairwise_matches_pointwise(self, rng):
        sources = Rectangle.square(50.0).sample_uniform(rng, 7)
        targets = Rectangle.square(50.0).sample_uniform(rng, 9)
        matrix = pairwise_distances_m(sources, targets)
        for i, s in enumerate(sources):
            for j, t in enumerate(targets):
                assert matrix[i, j] == pytest.approx(s.distance_to(t))

    def test_pairwise_empty_inputs(self):
        assert pairwise_distances_m([], []).shape == (0, 0)
        assert pairwise_distances_m([Point(0, 0)], []).shape == (1, 0)

    def test_distance_never_negative(self):
        assert distance_m(Point(-5, -5), Point(-1, -2)) >= 0.0

    def test_triangle_inequality(self):
        a, b, c = Point(0, 0), Point(13, -7), Point(4, 22)
        assert distance_m(a, c) <= distance_m(a, b) + distance_m(b, c) + 1e-12

    def test_large_coordinates_no_overflow(self):
        a, b = Point(1e8, 1e8), Point(-1e8, -1e8)
        assert math.isfinite(distance_m(a, b))
