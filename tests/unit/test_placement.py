"""Unit tests for BS/UE placement strategies."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.model.geometry import Point, Rectangle
from repro.model.placement import (
    ClusteredPlacement,
    RegularGridPlacement,
    UniformRandomPlacement,
    coverage_overlap_count,
    make_placement,
    scatter_ues,
)

REGION = Rectangle.square(1200.0)


class TestRegularGridPlacement:
    def test_paper_grid_25_bs(self, rng):
        points = RegularGridPlacement(300.0).place(REGION, 25, rng)
        assert len(points) == 25
        xs = sorted({p.x for p in points})
        ys = sorted({p.y for p in points})
        assert len(xs) == 5 and len(ys) == 5
        # 300 m inter-site distance along both axes.
        assert all(
            b - a == pytest.approx(300.0) for a, b in zip(xs, xs[1:])
        )
        assert all(
            b - a == pytest.approx(300.0) for a, b in zip(ys, ys[1:])
        )

    def test_grid_is_centered(self, rng):
        points = RegularGridPlacement(300.0).place(REGION, 25, rng)
        mean_x = sum(p.x for p in points) / len(points)
        mean_y = sum(p.y for p in points) / len(points)
        assert mean_x == pytest.approx(600.0)
        assert mean_y == pytest.approx(600.0)

    def test_grid_inside_region(self, rng):
        points = RegularGridPlacement(300.0).place(REGION, 25, rng)
        assert all(REGION.contains(p) for p in points)

    def test_partial_last_row(self, rng):
        points = RegularGridPlacement(100.0).place(REGION, 7, rng)
        assert len(points) == 7
        assert len(set(points)) == 7

    def test_ignores_rng(self):
        a = RegularGridPlacement(300.0).place(REGION, 25, np.random.default_rng(0))
        b = RegularGridPlacement(300.0).place(REGION, 25, np.random.default_rng(99))
        assert a == b

    def test_zero_count(self, rng):
        assert RegularGridPlacement(300.0).place(REGION, 0, rng) == []

    def test_single_bs_at_center(self, rng):
        (point,) = RegularGridPlacement(300.0).place(REGION, 1, rng)
        assert point == Point(600.0, 600.0)

    def test_grid_too_large_for_region_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            RegularGridPlacement(700.0).place(REGION, 25, rng)

    def test_non_positive_spacing_rejected(self):
        with pytest.raises(ConfigurationError):
            RegularGridPlacement(0.0)

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            RegularGridPlacement(300.0).place(REGION, -1, rng)


class TestUniformRandomPlacement:
    def test_count_and_containment(self, rng):
        points = UniformRandomPlacement().place(REGION, 40, rng)
        assert len(points) == 40
        assert all(REGION.contains(p) for p in points)

    def test_seed_determinism(self):
        a = UniformRandomPlacement().place(REGION, 10, np.random.default_rng(3))
        b = UniformRandomPlacement().place(REGION, 10, np.random.default_rng(3))
        assert a == b

    def test_min_separation_respected(self, rng):
        placement = UniformRandomPlacement(min_separation_m=100.0)
        points = placement.place(REGION, 20, rng)
        for i, a in enumerate(points):
            for b in points[i + 1 :]:
                assert a.distance_to(b) >= 100.0

    def test_infeasible_separation_raises(self, rng):
        placement = UniformRandomPlacement(min_separation_m=2000.0)
        with pytest.raises(ConfigurationError):
            placement.place(REGION, 5, rng)

    def test_negative_separation_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformRandomPlacement(min_separation_m=-1.0)


class TestClusteredPlacement:
    def test_count_and_containment(self, rng):
        points = ClusteredPlacement(cluster_count=3, spread_m=100.0).place(
            REGION, 30, rng
        )
        assert len(points) == 30
        assert all(REGION.contains(p) for p in points)

    def test_clustering_is_tighter_than_uniform(self):
        # Mean nearest-neighbour distance should be smaller under
        # clustering than under a uniform scatter of the same size.
        rng_a = np.random.default_rng(42)
        rng_b = np.random.default_rng(42)
        clustered = ClusteredPlacement(cluster_count=2, spread_m=50.0).place(
            REGION, 40, rng_a
        )
        uniform = UniformRandomPlacement().place(REGION, 40, rng_b)

        def mean_nn(points):
            total = 0.0
            for p in points:
                total += min(
                    p.distance_to(q) for q in points if q is not p
                )
            return total / len(points)

        assert mean_nn(clustered) < mean_nn(uniform)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusteredPlacement(cluster_count=0)
        with pytest.raises(ConfigurationError):
            ClusteredPlacement(spread_m=0.0)


class TestFactoryAndHelpers:
    def test_make_placement_known_names(self):
        assert isinstance(make_placement("regular"), RegularGridPlacement)
        assert isinstance(make_placement("random"), UniformRandomPlacement)
        assert isinstance(make_placement("clustered"), ClusteredPlacement)

    def test_make_placement_passes_kwargs(self):
        placement = make_placement("regular", inter_site_distance_m=150.0)
        assert placement.inter_site_distance_m == 150.0

    def test_make_placement_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_placement("hexagonal")

    def test_scatter_ues(self, rng):
        points = scatter_ues(REGION, 100, rng)
        assert len(points) == 100
        assert all(REGION.contains(p) for p in points)

    def test_coverage_overlap_count(self):
        bss = [Point(0, 0), Point(300, 0), Point(900, 0)]
        assert coverage_overlap_count(bss, Point(150, 0), radius_m=200.0) == 2
        assert coverage_overlap_count(bss, Point(900, 0), radius_m=200.0) == 1
        assert coverage_overlap_count(bss, Point(150, 0), radius_m=10.0) == 0

    def test_paper_layouts_give_multi_coverage(self, rng):
        """The paper's premise: UEs tend to be covered by multiple BSs."""
        grid = RegularGridPlacement(300.0).place(REGION, 25, rng)
        ues = scatter_ues(REGION, 200, rng)
        degrees = [
            coverage_overlap_count(grid, ue, radius_m=500.0) for ue in ues
        ]
        assert sum(d >= 2 for d in degrees) / len(degrees) > 0.95
