"""Unit tests for run manifests (``dmra.manifest/1``)."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    MANIFEST_SCHEMA,
    build_manifest,
    config_digest,
    manifests_comparable,
    validate_manifest,
)
from repro.obs.manifest import config_to_dict, default_host_info
from repro.sim.config import ScenarioConfig

CONFIG = ScenarioConfig.paper()


def fixed_manifest(**overrides):
    """A deterministic manifest (pinned clock/host) for tests."""
    kwargs = dict(
        config=CONFIG,
        seeds=[0, 1],
        command="run",
        clock=lambda: 1700000000.0,
        host=lambda: {"platform": "test", "python": "3.x", "cpu_count": 1},
    )
    kwargs.update(overrides)
    return build_manifest(**kwargs)


class TestConfigDigest:
    def test_digest_is_stable(self):
        assert config_digest(CONFIG) == config_digest(CONFIG)
        assert len(config_digest(CONFIG)) == 16

    def test_digest_changes_with_any_field(self):
        assert config_digest(CONFIG) != config_digest(CONFIG.with_(rho=99.0))

    def test_config_to_dict_round_trips_json(self):
        as_dict = config_to_dict(CONFIG)
        import json

        assert json.loads(json.dumps(as_dict)) == as_dict

    def test_non_dataclass_rejected(self):
        with pytest.raises(ConfigurationError):
            config_digest({"rho": 1.0})


class TestBuildManifest:
    def test_has_schema_and_identity_fields(self):
        manifest = fixed_manifest()
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["config_digest"] == config_digest(CONFIG)
        assert manifest["seeds"] == [0, 1]
        assert manifest["command"] == "run"
        assert manifest["created_unix_s"] == 1700000000.0
        assert manifest["host"]["platform"] == "test"
        validate_manifest(manifest)

    def test_configless_manifest(self):
        manifest = fixed_manifest(config=None)
        assert manifest["config_digest"] is None
        assert manifest["config"] is None
        validate_manifest(manifest)

    def test_default_host_info_shape(self):
        host = default_host_info()
        assert set(host) == {"platform", "python", "cpu_count"}

    def test_extra_is_preserved(self):
        manifest = fixed_manifest(extra={"note": "ab-test"})
        assert manifest["extra"] == {"note": "ab-test"}

    def test_validate_rejects_wrong_schema(self):
        manifest = fixed_manifest()
        manifest["schema"] = "dmra.manifest/999"
        with pytest.raises(ConfigurationError):
            validate_manifest(manifest)

    def test_validate_rejects_non_mapping(self):
        with pytest.raises(ConfigurationError):
            validate_manifest("not a manifest")


class TestComparability:
    def test_identical_manifests_comparable(self):
        ok, notes = manifests_comparable(fixed_manifest(), fixed_manifest())
        assert ok
        assert notes == []

    def test_missing_manifest_blocks(self):
        ok, notes = manifests_comparable(None, fixed_manifest())
        assert not ok
        assert any("missing" in note for note in notes)

    def test_config_change_blocks_and_names_field(self):
        perturbed = fixed_manifest(config=CONFIG.with_(rho=12.0))
        ok, notes = manifests_comparable(fixed_manifest(), perturbed)
        assert not ok
        assert any("rho" in note for note in notes)

    def test_seed_change_blocks(self):
        ok, notes = manifests_comparable(
            fixed_manifest(), fixed_manifest(seeds=[2])
        )
        assert not ok
        assert any("seed" in note for note in notes)

    def test_version_change_noted_but_not_blocking(self):
        a, b = fixed_manifest(), fixed_manifest()
        b["version"] = "0.0.0-other"
        ok, notes = manifests_comparable(a, b)
        assert ok
        assert any("version" in note for note in notes)

    def test_clock_and_host_do_not_affect_comparability(self):
        later = fixed_manifest(
            clock=lambda: 1800000000.0, host=lambda: {"platform": "other"}
        )
        ok, notes = manifests_comparable(fixed_manifest(), later)
        assert ok
        assert notes == []
