"""Unit tests for result aggregation and parameter sweeps."""

import pytest

from repro.baselines.nonco import NonCoAllocator
from repro.core.dmra import DMRAAllocator
from repro.errors import ConfigurationError
from repro.sim.config import ScenarioConfig
from repro.sim.results import Series, aggregate
from repro.sim.sweep import (
    SweepSpec,
    _resolve_workers,
    rho_sweep,
    run_sweep,
    ue_count_sweep,
)


class TestAggregate:
    def test_single_value(self):
        agg = aggregate([5.0])
        assert agg.mean == 5.0
        assert agg.std == 0.0
        assert agg.count == 1
        assert agg.ci95_half_width == 0.0

    def test_known_statistics(self):
        agg = aggregate([1.0, 2.0, 3.0, 4.0])
        assert agg.mean == pytest.approx(2.5)
        assert agg.std == pytest.approx(1.2909944, rel=1e-6)
        assert agg.count == 4
        assert agg.ci95_half_width == pytest.approx(
            1.96 * agg.std / 2.0
        )

    def test_ci_bounds(self):
        agg = aggregate([10.0, 12.0, 14.0])
        assert agg.ci_low == pytest.approx(agg.mean - agg.ci95_half_width)
        assert agg.ci_high == pytest.approx(agg.mean + agg.ci95_half_width)

    def test_empty_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            aggregate([])

    def test_constant_sample_zero_spread(self):
        agg = aggregate([7.0] * 10)
        assert agg.std == 0.0
        assert agg.ci95_half_width == 0.0


class TestSeries:
    def test_from_samples(self):
        series = Series.from_samples(
            "dmra", [(400, [1.0, 2.0]), (500, [3.0, 5.0])]
        )
        assert series.label == "dmra"
        assert series.xs == (400.0, 500.0)
        assert series.means == (1.5, 4.0)

    def test_value_at(self):
        series = Series.from_samples("x", [(1, [2.0])])
        assert series.value_at(1.0).mean == 2.0
        with pytest.raises(ConfigurationError):
            series.value_at(9.0)


class TestSweeps:
    def make_factories(self, pricing):
        return {
            "dmra": lambda _x: DMRAAllocator(pricing=pricing),
            "nonco": lambda _x: NonCoAllocator(),
        }

    def test_ue_count_sweep_structure(self):
        config = ScenarioConfig.paper()
        from repro.econ.pricing import PaperPricing

        result = ue_count_sweep(
            config=config,
            ue_counts=[40, 80],
            seeds=[0, 1],
            allocator_factories=self.make_factories(PaperPricing()),
            metric=lambda m: m.total_profit,
        )
        assert set(result.labels()) == {"dmra", "nonco"}
        for label in result.labels():
            series = result[label]
            assert series.xs == (40.0, 80.0)
            assert all(p.value.count == 2 for p in series.points)
            assert all(p.value.mean > 0 for p in series.points)

    def test_profit_grows_with_ue_count(self):
        from repro.econ.pricing import PaperPricing

        result = ue_count_sweep(
            config=ScenarioConfig.paper(),
            ue_counts=[40, 120],
            seeds=[0],
            allocator_factories={
                "dmra": lambda _x: DMRAAllocator(pricing=PaperPricing())
            },
            metric=lambda m: m.total_profit,
        )
        means = result["dmra"].means
        assert means[1] > means[0]

    def test_rho_sweep_passes_rho_through(self):
        from repro.econ.pricing import PaperPricing

        seen: list[float] = []

        def factory(rho: float):
            seen.append(rho)
            return DMRAAllocator(pricing=PaperPricing(), rho=rho)

        result = rho_sweep(
            config=ScenarioConfig.paper(),
            rhos=[0.0, 50.0],
            ue_count=40,
            seeds=[0],
            allocator_factory=factory,
            metric=lambda m: m.total_profit,
        )
        assert sorted(set(seen)) == [0.0, 50.0]
        assert result["dmra"].xs == (0.0, 50.0)

    def test_sweep_spec_validation(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(
                xs=(),
                seeds=(0,),
                scenario_factory=lambda x, s: None,
                allocator_factories={"a": lambda x: None},
                metric=lambda m: 0.0,
            )
        with pytest.raises(ConfigurationError):
            SweepSpec(
                xs=(1.0,),
                seeds=(),
                scenario_factory=lambda x, s: None,
                allocator_factories={"a": lambda x: None},
                metric=lambda m: 0.0,
            )
        with pytest.raises(ConfigurationError):
            SweepSpec(
                xs=(1.0,),
                seeds=(0,),
                scenario_factory=lambda x, s: None,
                allocator_factories={},
                metric=lambda m: 0.0,
            )

    def make_spec(self):
        from repro.econ.pricing import PaperPricing
        from repro.sim.scenario import build_scenario

        return SweepSpec(
            xs=(30.0, 60.0),
            seeds=(0, 1),
            scenario_factory=lambda x, seed: build_scenario(
                ScenarioConfig.paper(), int(x), seed
            ),
            allocator_factories=self.make_factories(PaperPricing()),
            metric=lambda m: m.total_profit,
        )

    def test_parallel_sweep_matches_serial(self):
        """workers=2 must reproduce the serial sweep bit for bit —
        same series, same x order, same per-point sample values."""
        spec = self.make_spec()
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=2)
        assert serial.labels() == parallel.labels()
        for label in serial.labels():
            assert serial[label].xs == parallel[label].xs
            for p_serial, p_parallel in zip(
                serial[label].points, parallel[label].points
            ):
                assert p_serial.value.mean == p_parallel.value.mean
                assert p_serial.value.std == p_parallel.value.std
                assert p_serial.value.count == p_parallel.value.count

    def test_oversized_pool_is_harmless(self):
        """More workers than grid cells must still work and agree."""
        spec = self.make_spec()
        serial = run_sweep(spec, workers=1)
        wide = run_sweep(spec, workers=16)
        for label in serial.labels():
            assert serial[label].means == wide[label].means

    def test_resolve_workers(self, monkeypatch):
        monkeypatch.delenv("DMRA_SWEEP_WORKERS", raising=False)
        assert _resolve_workers(None) == 1
        assert _resolve_workers(4) == 4
        monkeypatch.setenv("DMRA_SWEEP_WORKERS", "3")
        assert _resolve_workers(None) == 3
        assert _resolve_workers(2) == 2  # explicit arg wins over env

    def test_resolve_workers_rejects_bad_values(self, monkeypatch):
        with pytest.raises(ConfigurationError):
            _resolve_workers(0)
        with pytest.raises(ConfigurationError):
            _resolve_workers(-2)
        monkeypatch.setenv("DMRA_SWEEP_WORKERS", "two")
        with pytest.raises(ConfigurationError):
            _resolve_workers(None)

    def test_paired_scenarios_across_allocators(self):
        """All allocators at one (x, seed) must see the same scenario."""
        from repro.sim.scenario import build_scenario

        seen_scenarios = []

        def factory(x, seed):
            scenario = build_scenario(ScenarioConfig.paper(), int(x), seed)
            seen_scenarios.append(scenario)
            return scenario

        from repro.econ.pricing import PaperPricing

        run_sweep(
            SweepSpec(
                xs=(30.0,),
                seeds=(0,),
                scenario_factory=factory,
                allocator_factories=self.make_factories(PaperPricing()),
                metric=lambda m: m.total_profit,
            )
        )
        # One scenario built per (x, seed), shared by both allocators.
        assert len(seen_scenarios) == 1
