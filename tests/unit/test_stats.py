"""Unit tests for the paired statistical comparison utility."""

import pytest

from repro.baselines.dcsp import DCSPAllocator
from repro.baselines.random_alloc import RandomAllocator
from repro.core.dmra import DMRAAllocator
from repro.errors import ConfigurationError
from repro.sim.config import ScenarioConfig
from repro.sim.stats import compare_allocators

CONFIG = ScenarioConfig.paper()


def dmra_factory(scenario):
    return DMRAAllocator(pricing=scenario.pricing)


def dcsp_factory(scenario):
    return DCSPAllocator()


class TestCompareAllocators:
    def test_dmra_vs_dcsp_significant(self):
        comparison = compare_allocators(
            CONFIG, 300, dmra_factory, dcsp_factory, seeds=range(6)
        )
        assert comparison.name_a == "dmra"
        assert comparison.name_b == "dcsp"
        assert comparison.replication_count == 6
        assert comparison.mean_difference > 0
        assert comparison.wins_a == 6
        assert comparison.significant_at_5pct
        assert "dmra > dcsp" in comparison.summary()
        assert "significant" in comparison.summary()

    def test_self_comparison_is_all_ties(self):
        comparison = compare_allocators(
            CONFIG, 150, dmra_factory, dmra_factory, seeds=range(3)
        )
        assert comparison.mean_difference == 0.0
        assert comparison.ties == 3
        assert comparison.p_value == 1.0
        assert not comparison.significant_at_5pct

    def test_values_are_paired_per_seed(self):
        comparison = compare_allocators(
            CONFIG, 150, dmra_factory, dcsp_factory, seeds=[4, 5, 6]
        )
        assert len(comparison.values_a) == len(comparison.values_b) == 3
        assert (
            comparison.wins_a + comparison.wins_b + comparison.ties == 3
        )

    def test_custom_metric(self):
        comparison = compare_allocators(
            CONFIG,
            150,
            dmra_factory,
            dcsp_factory,
            seeds=range(3),
            metric=lambda m: m.same_sp_fraction,
        )
        # DMRA's SP-aware preferences yield a higher same-SP share.
        assert comparison.mean_difference > 0

    def test_needs_two_seeds(self):
        with pytest.raises(ConfigurationError):
            compare_allocators(
                CONFIG, 100, dmra_factory, dcsp_factory, seeds=[1]
            )

    def test_losing_side_reported(self):
        comparison = compare_allocators(
            CONFIG,
            300,
            lambda s: RandomAllocator(seed=s.seed),
            dmra_factory,
            seeds=range(4),
        )
        assert comparison.mean_difference < 0
        assert comparison.wins_b == 4
        assert "dmra > random" in comparison.summary()


class TestSummaryDirection:
    @staticmethod
    def _comparison(mean_difference):
        from repro.sim.stats import PairedComparison

        return PairedComparison(
            name_a="a",
            name_b="b",
            values_a=(1.0, 2.0),
            values_b=(1.0 - mean_difference, 2.0 - mean_difference),
            mean_difference=mean_difference,
            t_statistic=0.0,
            p_value=1.0,
            wins_a=1 if mean_difference > 0 else 0,
            wins_b=1 if mean_difference < 0 else 0,
            ties=2 if mean_difference == 0 else 1,
        )

    def test_positive_difference_reports_a_over_b(self):
        assert "a > b" in self._comparison(1.0).summary()

    def test_negative_difference_reports_b_over_a(self):
        assert "b > a" in self._comparison(-1.0).summary()

    def test_zero_difference_reports_tie_not_b_over_a(self):
        # Regression: a dead heat used to be reported as "b > a".
        summary = self._comparison(0.0).summary()
        assert "a == b" in summary
        assert "b > a" not in summary
        assert "a > b" not in summary
