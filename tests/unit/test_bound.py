"""Unit tests for the optimality-gap certification subsystem
(:mod:`repro.bound`).

The ordering being verified throughout (and in the integration sandwich
test) is::

    lagrangian >= lp >= ilp optimum >= any feasible profit

The Lagrangian dual of the per-BS capacity constraints is an upper
bound on the LP value at *any* truncation (weak duality); at its
optimum it equals the LP value because the remaining per-UE subproblem
is integral.  The LP relaxation in turn dominates the ILP optimum,
which dominates every feasible assignment.
"""

import numpy as np
import pytest

from conftest import make_tiny_network
from repro.baselines.optimal import OptimalILPAllocator
from repro.bound import (
    GapCertificate,
    certify_gap,
    compile_bound_problem,
    lagrangian_bound,
    lp_bound,
)
from repro.econ.accounting import compute_profit, marginal_profit
from repro.econ.pricing import PaperPricing
from repro.errors import ConfigurationError
from repro.obs import metrics_from_certificates
from repro.radio.channel import build_radio_map
from repro.radio.sinr import LinkBudget

PRICING = PaperPricing(base_price=1.0, cross_sp_markup=2.0, distance_weight=0.01)


def tiny_problem():
    network = make_tiny_network()
    radio_map = build_radio_map(network, LinkBudget())
    return network, radio_map


class TestBoundProblem:
    def test_csr_layout_is_consistent(self):
        network, radio_map = tiny_problem()
        problem = compile_bound_problem(network, radio_map, PRICING)
        assert problem.n_ue == len(network.user_equipments)
        assert problem.indptr.shape == (problem.n_ue + 1,)
        assert problem.indptr[-1] == problem.n_pairs
        assert problem.pair_profit.shape == (problem.n_pairs,)
        # Every pair row index lies inside its UE's CSR slice.
        for row in range(problem.n_ue):
            lo, hi = problem.indptr[row], problem.indptr[row + 1]
            assert (problem.row_of_pair[lo:hi] == row).all()

    def test_pair_profit_matches_scalar_accounting(self):
        """The vectorized profit column is the scalar marginal_profit."""
        network, radio_map = tiny_problem()
        problem = compile_bound_problem(network, radio_map, PRICING)
        for k in range(problem.n_pairs):
            ue_id = int(problem.ue_ids[problem.row_of_pair[k]])
            bs_id = int(problem.bs_ids[problem.pair_bs[k]])
            expected = marginal_profit(network, ue_id, bs_id, PRICING)
            assert problem.pair_profit[k] == pytest.approx(expected)

    def test_capacity_vectors_cover_every_bs(self):
        network, radio_map = tiny_problem()
        problem = compile_bound_problem(network, radio_map, PRICING)
        assert problem.cap_rrb.shape == (problem.n_bs,)
        assert (problem.cap_rrb >= 0).all()
        assert problem.cap_cru.shape == (
            problem.n_bs * len(problem.service_ids),
        )

    def test_estimated_bytes_positive(self):
        network, radio_map = tiny_problem()
        problem = compile_bound_problem(network, radio_map, PRICING)
        assert problem.estimated_bytes() > 0


class TestLagrangianBound:
    def test_dominates_lp_value(self):
        network, radio_map = tiny_problem()
        problem = compile_bound_problem(network, radio_map, PRICING)
        outcome = lagrangian_bound(problem, max_iterations=200)
        lp = lp_bound(network, radio_map, PRICING)
        assert outcome.upper_bound >= lp - 1e-6 * max(1.0, abs(lp))

    def test_initial_bound_is_capacity_blind_sum(self):
        """At zero multipliers the dual is the sum of each UE's best
        positive profit, ignoring capacity — the loosest valid bound."""
        network, radio_map = tiny_problem()
        problem = compile_bound_problem(network, radio_map, PRICING)
        outcome = lagrangian_bound(problem, max_iterations=0)
        blind = 0.0
        for row in range(problem.n_ue):
            lo, hi = problem.indptr[row], problem.indptr[row + 1]
            if hi > lo:
                blind += max(0.0, float(problem.pair_profit[lo:hi].max()))
        assert outcome.initial_bound == pytest.approx(blind)
        assert outcome.upper_bound <= outcome.initial_bound + 1e-12

    def test_iterations_respect_budget(self):
        network, radio_map = tiny_problem()
        problem = compile_bound_problem(network, radio_map, PRICING)
        outcome = lagrangian_bound(problem, max_iterations=3)
        assert outcome.iterations <= 3

    def test_chunked_solve_matches_unchunked(self):
        network, radio_map = tiny_problem()
        problem = compile_bound_problem(network, radio_map, PRICING)
        whole = lagrangian_bound(problem, max_iterations=50)
        chunked = lagrangian_bound(problem, max_iterations=50, chunk_ues=1)
        assert chunked.upper_bound == pytest.approx(whole.upper_bound)


class TestLPBound:
    def test_dominates_ilp_optimum(self, small_scenario):
        network = small_scenario.network
        radio_map = small_scenario.radio_map
        pricing = small_scenario.pricing
        ilp = OptimalILPAllocator(pricing=pricing).allocate(
            network, radio_map
        )
        ilp_profit = compute_profit(
            network, ilp.grants, pricing
        ).total_profit
        lp = lp_bound(network, radio_map, pricing)
        assert lp >= ilp_profit - 1e-6 * max(1.0, abs(ilp_profit))

    def test_relaxed_allocator_refuses_allocate(self):
        network, radio_map = tiny_problem()
        allocator = OptimalILPAllocator(pricing=PRICING, relaxed=True)
        with pytest.raises(ConfigurationError):
            allocator.allocate(network, radio_map)
        assert allocator.objective_bound(network, radio_map) >= 0.0

    def test_guard_message_reports_count_and_alternative(self):
        network, radio_map = tiny_problem()
        allocator = OptimalILPAllocator(pricing=PRICING, max_variables=1)
        with pytest.raises(ConfigurationError) as excinfo:
            allocator.allocate(network, radio_map)
        message = str(excinfo.value)
        assert "repro.bound" in message
        # The actual candidate-variable count, not just the cap.
        assert any(token.isdigit() and int(token) > 1
                   for token in message.replace(",", " ").split())


class TestCertifyGap:
    def test_unknown_method_rejected(self):
        network, radio_map = tiny_problem()
        with pytest.raises(ConfigurationError):
            certify_gap(network, radio_map, PRICING, method="milp")

    def test_lp_and_lagrangian_certificates_agree_on_tiny(self):
        network, radio_map = tiny_problem()
        lp_cert = certify_gap(network, radio_map, PRICING, method="lp")
        lag_cert = certify_gap(
            network, radio_map, PRICING, method="lagrangian",
            max_iterations=300,
        )
        assert lag_cert.upper_bound >= lp_cert.upper_bound - 1e-6
        assert lp_cert.iterations == 1
        assert lp_cert.wall_time_s >= 0.0

    def test_gap_fraction_clamps(self):
        assert GapCertificate(
            method="lp", upper_bound=0.0, incumbent_profit=0.0,
            iterations=1, wall_time_s=0.0, converged=True,
        ).gap_fraction == 0.0
        # Incumbent above the bound (numerical noise): clamp at zero.
        assert GapCertificate(
            method="lp", upper_bound=10.0, incumbent_profit=11.0,
            iterations=1, wall_time_s=0.0, converged=True,
        ).gap_fraction == 0.0
        assert GapCertificate(
            method="lp", upper_bound=10.0, incumbent_profit=9.0,
            iterations=1, wall_time_s=0.0, converged=True,
        ).gap_fraction == pytest.approx(0.1)

    def test_as_dict_round_trip_keys(self):
        network, radio_map = tiny_problem()
        cert = certify_gap(
            network, radio_map, PRICING,
            incumbent_profit=1.0, method="lagrangian",
        )
        payload = cert.as_dict()
        assert set(payload) == {
            "method", "upper_bound", "incumbent_profit", "gap_fraction",
            "iterations", "wall_time_s", "converged",
        }


class TestCertificateMetrics:
    def certificate(self, method="lagrangian", upper=10.0, profit=9.0):
        return GapCertificate(
            method=method, upper_bound=upper, incumbent_profit=profit,
            iterations=5, wall_time_s=0.01, converged=True,
        )

    def test_families_and_labels(self):
        document = metrics_from_certificates(
            [self.certificate("lp"), self.certificate("lagrangian")],
            baseline_profits={"auction": 8.0},
        )
        for family in (
            "dmra_bound_upper",
            "dmra_gap_fraction",
            "dmra_bound_iterations",
            "dmra_bound_converged",
            "dmra_incumbent_profit",
            "dmra_baseline_profit",
        ):
            assert document.has_family(family), family
        gaps = document.family("dmra_gap_fraction")
        assert gaps.sample(method="lp") == pytest.approx(0.1)
        assert document.family("dmra_baseline_profit").sample(
            allocator="auction"
        ) == pytest.approx(8.0)

    def test_wall_time_family_is_diff_ignored(self):
        from repro.obs import DiffTolerances

        document = metrics_from_certificates([self.certificate()])
        assert document.has_family("dmra_wall_bound_seconds")
        assert DiffTolerances().ignored("dmra_wall_bound_seconds")

    def test_empty_certificate_list_rejected(self):
        with pytest.raises(ConfigurationError):
            metrics_from_certificates([])


class TestNumpyHygiene:
    def test_problem_arrays_are_numpy(self):
        network, radio_map = tiny_problem()
        problem = compile_bound_problem(network, radio_map, PRICING)
        for name in ("indptr", "pair_profit", "pair_cru", "pair_rrb",
                     "cap_cru", "cap_rrb"):
            assert isinstance(getattr(problem, name), np.ndarray), name
