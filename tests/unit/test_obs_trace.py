"""Unit tests for the JSONL trace format and the report renderer."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    SCHEMA,
    Recorder,
    parse_trace,
    read_trace,
    render_trace_report,
    trace_from_recorder,
    trace_lines,
    write_trace,
)


def sample_recorder() -> Recorder:
    rec = Recorder(meta={"command": "test", "seed": 7})
    with rec.span("sweep", cells=2):
        with rec.span("sweep.cell", x=600.0, seed=0):
            with rec.span("match", policy="dmra"):
                pass
        with rec.span("sweep.cell", x=600.0, seed=1):
            pass
    rec.count("match.proposals", 123)
    rec.gauge("online.rrb_utilization", 0.25)
    rec.gauge("online.rrb_utilization", 0.75)
    rec.record_timer("online.batch", 0.125)
    return rec


class TestSerialization:
    def test_header_first_with_schema(self):
        lines = trace_lines(sample_recorder())
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["schema"] == SCHEMA
        assert header["meta"] == {"command": "test", "seed": 7}

    def test_every_line_is_json_with_sorted_keys(self):
        for line in trace_lines(sample_recorder()):
            record = json.loads(line)
            assert list(record) == sorted(record)

    def test_spans_emitted_preorder_with_sequential_ids(self):
        lines = trace_lines(sample_recorder())
        spans = [
            json.loads(line) for line in lines
            if json.loads(line)["kind"] == "span"
        ]
        assert [s["id"] for s in spans] == [1, 2, 3, 4]
        assert [s["parent"] for s in spans] == [0, 1, 2, 1]
        assert [s["name"] for s in spans] == [
            "sweep", "sweep.cell", "match", "sweep.cell",
        ]

    def test_round_trip_is_exact(self):
        lines = trace_lines(sample_recorder())
        assert trace_lines(parse_trace(lines)) == lines

    def test_accepts_trace_or_recorder(self):
        rec = sample_recorder()
        assert trace_lines(rec) == trace_lines(trace_from_recorder(rec))

    def test_metrics_survive_round_trip(self):
        rec = sample_recorder()
        parsed = parse_trace(trace_lines(rec))
        assert parsed.counters == rec.counters
        assert parsed.gauges == rec.gauges
        assert parsed.timers == rec.timers


class TestParsing:
    def test_parses_string_or_lines(self):
        lines = trace_lines(sample_recorder())
        assert trace_lines(parse_trace("\n".join(lines))) == lines

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            parse_trace([])

    def test_missing_header_rejected(self):
        with pytest.raises(ConfigurationError, match="header"):
            parse_trace(['{"kind":"counter","name":"c","value":1}'])

    def test_unknown_schema_rejected(self):
        with pytest.raises(ConfigurationError, match="schema"):
            parse_trace(['{"kind":"header","schema":"other/9","meta":{}}'])

    def test_malformed_json_rejected(self):
        lines = trace_lines(sample_recorder())
        with pytest.raises(ConfigurationError, match="line 2"):
            parse_trace([lines[0], "{not json"])

    def test_unknown_kind_rejected(self):
        lines = trace_lines(sample_recorder())
        with pytest.raises(ConfigurationError, match="unknown record kind"):
            parse_trace([lines[0], '{"kind":"mystery"}'])

    def test_dangling_parent_rejected(self):
        header = trace_lines(Recorder(meta={}))[0]
        span = (
            '{"attrs":{},"end_s":1.0,"id":2,"kind":"span",'
            '"name":"orphan","parent":9,"start_s":0.0}'
        )
        with pytest.raises(ConfigurationError, match="unknown parent"):
            parse_trace([header, span])


class TestFileIO:
    def test_write_then_read(self, tmp_path):
        rec = sample_recorder()
        path = write_trace(tmp_path / "t.jsonl", rec)
        assert trace_lines(read_trace(path)) == trace_lines(rec)

    def test_write_creates_parent_directories(self, tmp_path):
        path = write_trace(tmp_path / "deep" / "t.jsonl", sample_recorder())
        assert path.exists()

    def test_read_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            read_trace(tmp_path / "absent.jsonl")


class TestReport:
    def test_report_shows_tree_and_tables(self):
        trace = trace_from_recorder(sample_recorder())
        report = render_trace_report(trace)
        assert "sweep" in report
        assert "  sweep.cell" in report  # indented child
        assert "match.proposals" in report
        assert "online.batch" in report
        assert "online.rrb_utilization" in report
        assert "spans: 4" in report

    def test_min_ms_hides_fast_spans(self):
        trace = trace_from_recorder(sample_recorder())
        report = render_trace_report(trace, min_ms=1e6)
        # Roots always render; everything below is summarized.
        assert "sweep" in report
        assert "sweep.cell" not in report
        assert "below" in report

    def test_report_of_empty_recorder(self):
        report = render_trace_report(trace_from_recorder(Recorder()))
        assert "spans: 0" in report
