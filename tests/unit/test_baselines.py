"""Unit tests for the baseline allocators (DCSP, NonCo, greedy, random,
cloud-only, ILP)."""

import pytest

from conftest import make_tiny_network
from repro.baselines.cloud_only import CloudOnlyAllocator
from repro.baselines.dcsp import DCSPAllocator
from repro.baselines.greedy import GreedyProfitAllocator
from repro.baselines.nonco import NonCoAllocator
from repro.baselines.optimal import OptimalILPAllocator
from repro.baselines.random_alloc import RandomAllocator
from repro.econ.accounting import compute_profit
from repro.econ.pricing import PaperPricing
from repro.errors import ConfigurationError
from repro.model.geometry import Point
from repro.radio.channel import build_radio_map
from repro.radio.sinr import LinkBudget

PRICING = PaperPricing(base_price=1.0, cross_sp_markup=2.0, distance_weight=0.01)


def run(allocator, network):
    radio_map = build_radio_map(network, LinkBudget())
    assignment = allocator.allocate(network, radio_map)
    assignment.validate(network, radio_map)
    return assignment


class TestDCSP:
    def test_picks_least_occupied_bs(self):
        """With one BS pre-loaded (smaller CRU pool left), a lone UE goes
        to the emptier one even though it is farther."""
        network = make_tiny_network(
            ue_specs=[
                # UE 0 fills most of BS 0's service-0 pool first (closer).
                dict(ue_id=0, cru_demand=18, position=Point(50.0, 0.0)),
                dict(ue_id=1, cru_demand=4, position=Point(200.0, 0.0)),
            ]
        )
        assignment = run(DCSPAllocator(), network)
        assert assignment.serving_bs(0) == 0
        assert assignment.serving_bs(1) == 1  # emptier despite equal distance

    def test_serves_everyone_when_space_exists(self, small_scenario):
        assignment = DCSPAllocator().allocate(
            small_scenario.network, small_scenario.radio_map
        )
        assignment.validate(small_scenario.network, small_scenario.radio_map)
        assert assignment.cloud_count == 0

    def test_deterministic(self, small_scenario):
        a = DCSPAllocator().allocate(
            small_scenario.network, small_scenario.radio_map
        )
        b = DCSPAllocator().allocate(
            small_scenario.network, small_scenario.radio_map
        )
        assert a.association_pairs() == b.association_pairs()


class TestNonCo:
    def test_ue_goes_to_max_sinr_bs_only(self):
        network = make_tiny_network(
            ue_specs=[dict(ue_id=0, position=Point(300.0, 0.0))]
        )
        # BS 1 at 100 m beats BS 0 at 300 m on SINR.
        assignment = run(NonCoAllocator(), network)
        assert assignment.serving_bs(0) == 1

    def test_no_fallback_to_second_choice(self):
        """NonCo's defining behaviour: overflow goes to the cloud even
        when another BS has room."""
        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=0, cru_demand=15, position=Point(100.0, 0.0)),
                dict(ue_id=1, cru_demand=15, position=Point(110.0, 0.0)),
            ]
        )
        assignment = run(NonCoAllocator(), network)
        # Both UEs nominate BS 0 (nearest); only one fits its 20-CRU pool.
        assert assignment.edge_served_count == 1
        assert assignment.cloud_count == 1
        assert assignment.grants_of_bs(1) == ()

    def test_bs_admits_cheapest_rrb_first(self):
        """When the RRB budget covers only one UE, the lower-rate UE (which
        needs fewer RRBs) wins regardless of arrival order."""
        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=0, rate_demand_bps=6e6, position=Point(100.0, 0.0)),
                dict(
                    ue_id=1,
                    rate_demand_bps=2e6,
                    position=Point(140.0, 0.0),
                    service_id=1,
                ),
            ],
            bs_specs=[
                dict(bs_id=0, sp_id=0, position=Point(0, 0), rrb_capacity=1),
                dict(bs_id=1, sp_id=1, position=Point(2000, 0)),
            ],
            coverage_radius_m=500.0,
        )
        assignment = run(NonCoAllocator(), network)
        assert assignment.serving_bs(1) == 0
        assert assignment.cloud_ue_ids == {0}

    def test_uncovered_ue_forwarded(self):
        network = make_tiny_network(
            ue_specs=[dict(ue_id=0, position=Point(1199.0, 1199.0))],
            coverage_radius_m=100.0,
        )
        assignment = run(NonCoAllocator(), network)
        assert assignment.cloud_ue_ids == {0}


class TestGreedy:
    def test_takes_most_profitable_assignment(self):
        network = make_tiny_network(
            ue_specs=[dict(ue_id=0, sp_id=0, position=Point(200.0, 0.0))]
        )
        assignment = run(GreedyProfitAllocator(pricing=PRICING), network)
        # Equal distance; the same-SP BS yields the larger margin.
        assert assignment.serving_bs(0) == 0

    def test_respects_capacity(self):
        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=i, cru_demand=15, position=Point(100.0 + i, 0.0))
                for i in range(3)
            ]
        )
        assignment = run(GreedyProfitAllocator(pricing=PRICING), network)
        assert assignment.edge_served_count == 2
        assert assignment.cloud_count == 1


class TestRandom:
    def test_seed_reproducibility(self, small_scenario):
        a = RandomAllocator(seed=5).allocate(
            small_scenario.network, small_scenario.radio_map
        )
        b = RandomAllocator(seed=5).allocate(
            small_scenario.network, small_scenario.radio_map
        )
        assert a.association_pairs() == b.association_pairs()

    def test_different_seeds_differ(self, small_scenario):
        a = RandomAllocator(seed=1).allocate(
            small_scenario.network, small_scenario.radio_map
        )
        b = RandomAllocator(seed=2).allocate(
            small_scenario.network, small_scenario.radio_map
        )
        assert a.association_pairs() != b.association_pairs()

    def test_result_is_valid(self, small_scenario):
        assignment = RandomAllocator(seed=3).allocate(
            small_scenario.network, small_scenario.radio_map
        )
        assignment.validate(small_scenario.network, small_scenario.radio_map)


class TestCloudOnly:
    def test_everything_forwarded(self, small_scenario):
        assignment = CloudOnlyAllocator().allocate(
            small_scenario.network, small_scenario.radio_map
        )
        assignment.validate(small_scenario.network, small_scenario.radio_map)
        assert assignment.edge_served_count == 0
        assert assignment.cloud_count == small_scenario.ue_count

    def test_zero_profit(self, small_scenario):
        assignment = CloudOnlyAllocator().allocate(
            small_scenario.network, small_scenario.radio_map
        )
        statement = compute_profit(
            small_scenario.network, assignment.grants, PRICING
        )
        assert statement.total_profit == 0.0


class TestOptimalILP:
    def test_beats_or_matches_heuristics(self, small_scenario):
        pricing = small_scenario.pricing
        ilp = OptimalILPAllocator(pricing=pricing).allocate(
            small_scenario.network, small_scenario.radio_map
        )
        ilp.validate(small_scenario.network, small_scenario.radio_map)
        ilp_profit = compute_profit(
            small_scenario.network, ilp.grants, pricing
        ).total_profit
        for allocator in (
            GreedyProfitAllocator(pricing=pricing),
            NonCoAllocator(),
            DCSPAllocator(),
        ):
            other = allocator.allocate(
                small_scenario.network, small_scenario.radio_map
            )
            other_profit = compute_profit(
                small_scenario.network, other.grants, pricing
            ).total_profit
            assert ilp_profit >= other_profit - 1e-6

    def test_variable_guard(self, small_scenario):
        allocator = OptimalILPAllocator(max_variables=10)
        with pytest.raises(ConfigurationError, match="guard"):
            allocator.allocate(
                small_scenario.network, small_scenario.radio_map
            )

    def test_invalid_guard_value(self):
        with pytest.raises(ConfigurationError):
            OptimalILPAllocator(max_variables=0)

    def test_empty_network(self):
        network = make_tiny_network(ue_specs=[])
        assignment = run(OptimalILPAllocator(pricing=PRICING), network)
        assert assignment.edge_served_count == 0


class TestAuction:
    def _allocator(self, **kwargs):
        from repro.baselines.auction import AuctionAllocator

        return AuctionAllocator(pricing=PRICING, **kwargs)

    def test_valid_assignment_on_tiny_network(self):
        network = make_tiny_network(
            ue_specs=[dict(ue_id=0), dict(ue_id=1), dict(ue_id=2)]
        )
        assignment = run(self._allocator(), network)
        assert assignment.edge_served_count >= 1

    def test_contention_raises_asks_until_cleared(self):
        """Two UEs fighting over one CRU slot: the auction terminates
        with exactly one winner and the loser at its next-best option."""
        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=0, cru_demand=20),
                dict(ue_id=1, cru_demand=20),
            ]
        )
        assignment = run(self._allocator(), network)
        # 20-CRU demands cannot share one 20-CRU pool per BS.
        by_bs = {}
        for grant in assignment.grants:
            by_bs.setdefault(grant.bs_id, []).append(grant.ue_id)
        assert all(len(ues) == 1 for ues in by_bs.values())

    def test_deterministic(self, small_scenario):
        a = self._allocator().allocate(
            small_scenario.network, small_scenario.radio_map
        )
        b = self._allocator().allocate(
            small_scenario.network, small_scenario.radio_map
        )
        assert sorted(a.association_pairs()) == sorted(b.association_pairs())

    def test_ilp_dominates_auction(self, small_scenario):
        auction = self._allocator().allocate(
            small_scenario.network, small_scenario.radio_map
        )
        ilp = OptimalILPAllocator(
            pricing=small_scenario.pricing
        ).allocate(small_scenario.network, small_scenario.radio_map)
        auction_profit = compute_profit(
            small_scenario.network, auction.grants, small_scenario.pricing
        ).total_profit
        ilp_profit = compute_profit(
            small_scenario.network, ilp.grants, small_scenario.pricing
        ).total_profit
        assert ilp_profit >= auction_profit - 1e-6
        # Profits are evaluated under posted paper prices, so internal
        # ask escalation never inflates the reported objective.
        assert auction_profit >= 0.0

    def test_parameter_validation(self):
        from repro.baselines.auction import AuctionAllocator
        from repro.errors import AllocationError

        with pytest.raises(AllocationError):
            AuctionAllocator(price_increment=0.0)
        with pytest.raises(AllocationError):
            AuctionAllocator(max_rounds=0)


class TestPotentialGame:
    def test_zero_load_weight_is_plain_best_response(self, small_scenario):
        from repro.baselines.best_response import BestResponseAllocator

        plain = BestResponseAllocator(
            pricing=small_scenario.pricing
        ).allocate(small_scenario.network, small_scenario.radio_map)
        weighted_off = BestResponseAllocator(
            pricing=small_scenario.pricing, load_weight=0.0
        ).allocate(small_scenario.network, small_scenario.radio_map)
        assert sorted(plain.association_pairs()) == sorted(
            weighted_off.association_pairs()
        )

    def test_load_weight_names_the_allocator(self):
        from repro.baselines.best_response import BestResponseAllocator

        assert BestResponseAllocator().name == "best-response"
        assert (
            BestResponseAllocator(load_weight=1.0).name == "potential-game"
        )

    def test_congestion_spreads_load(self):
        """With a congestion penalty, identical UEs spread across BSs
        instead of piling onto the cheapest one."""
        from repro.baselines.best_response import BestResponseAllocator

        network = make_tiny_network(
            ue_specs=[dict(ue_id=i, cru_demand=2) for i in range(6)],
            bs_specs=[
                dict(bs_id=0, sp_id=0, position=Point(0.0, 0.0)),
                dict(bs_id=1, sp_id=0, position=Point(10.0, 0.0)),
            ],
        )
        spread = run(
            BestResponseAllocator(pricing=PRICING, load_weight=5.0), network
        )
        occupancy = {}
        for grant in spread.grants:
            occupancy[grant.bs_id] = occupancy.get(grant.bs_id, 0) + 1
        # Near-equidistant BSs with a strong congestion term: both carry
        # load instead of one winner-takes-all.
        assert len(occupancy) == 2

    def test_negative_load_weight_rejected(self):
        from repro.baselines.best_response import BestResponseAllocator
        from repro.errors import AllocationError

        with pytest.raises(AllocationError):
            BestResponseAllocator(load_weight=-0.5)

    def test_ilp_dominates_potential_game(self, small_scenario):
        from repro.baselines.best_response import BestResponseAllocator

        game = BestResponseAllocator(
            pricing=small_scenario.pricing, load_weight=1.0
        ).allocate(small_scenario.network, small_scenario.radio_map)
        ilp = OptimalILPAllocator(
            pricing=small_scenario.pricing
        ).allocate(small_scenario.network, small_scenario.radio_map)
        game_profit = compute_profit(
            small_scenario.network, game.grants, small_scenario.pricing
        ).total_profit
        ilp_profit = compute_profit(
            small_scenario.network, ilp.grants, small_scenario.pricing
        ).total_profit
        assert ilp_profit >= game_profit - 1e-6
