"""Unit tests for tariff validation (Eq. 16) and profit accounting (Eqs. 5-8)."""

import pytest

from conftest import make_tiny_network
from repro.compute.cru import Grant
from repro.econ.accounting import compute_profit, marginal_profit
from repro.econ.pricing import PaperPricing
from repro.econ.tariffs import max_margin, validate_tariffs
from repro.errors import TariffViolationError
from repro.model.entities import ServiceProvider
from repro.model.geometry import Point


PRICING = PaperPricing(base_price=1.0, cross_sp_markup=2.0, distance_weight=0.01)


class TestTariffValidation:
    def test_paper_defaults_satisfy_eq16(self):
        providers = [ServiceProvider(sp_id=0, cru_price=10.0, other_cost=0.5)]
        validate_tariffs(providers, PRICING, max_distance_m=500.0)

    def test_too_low_mk_rejected(self):
        # Worst-case price at 500 m is 2 + 5 = 7; m_k = 7 <= 7 + 0.5.
        providers = [ServiceProvider(sp_id=0, cru_price=7.0, other_cost=0.5)]
        with pytest.raises(TariffViolationError, match="Eq. 16"):
            validate_tariffs(providers, PRICING, max_distance_m=500.0)

    def test_boundary_equality_rejected(self):
        # m_k == worst price + m_k^o must fail (strict inequality).
        providers = [ServiceProvider(sp_id=0, cru_price=7.5, other_cost=0.5)]
        with pytest.raises(TariffViolationError):
            validate_tariffs(providers, PRICING, max_distance_m=500.0)

    def test_any_offending_sp_flagged(self):
        providers = [
            ServiceProvider(sp_id=0, cru_price=10.0, other_cost=0.5),
            ServiceProvider(sp_id=1, cru_price=5.0, other_cost=0.5),
        ]
        with pytest.raises(TariffViolationError, match="SP 1"):
            validate_tariffs(providers, PRICING, max_distance_m=500.0)

    def test_max_margin(self):
        sp = ServiceProvider(sp_id=0, cru_price=10.0, other_cost=0.5)
        assert max_margin(sp, price_per_cru=3.0) == pytest.approx(6.5)


class TestComputeProfit:
    def test_single_grant_decomposition(self, tiny_network):
        # UE 0 (SP 0, 4 CRUs) served by BS 0 (SP 0) at 100 m.
        grants = [Grant(bs_id=0, ue_id=0, service_id=0, crus=4, rrbs=1)]
        statement = compute_profit(tiny_network, grants, PRICING)
        sp0 = statement.by_sp[0]
        price = PRICING.price_per_cru(100.0, same_sp=True)  # 1 + 1 = 2
        assert sp0.revenue == pytest.approx(4 * 10.0)  # W_k^r
        assert sp0.bs_payments == pytest.approx(4 * price)  # W_k^B
        assert sp0.other_costs == pytest.approx(4 * 0.5)  # W_k^S
        assert sp0.profit == pytest.approx(4 * (10.0 - 0.5 - price))
        assert sp0.served_ue_count == 1

    def test_cross_sp_grant_pays_markup(self, tiny_network):
        # UE 0 (SP 0) served by BS 1 (SP 1) at 300 m.
        grants = [Grant(bs_id=1, ue_id=0, service_id=0, crus=4, rrbs=1)]
        statement = compute_profit(tiny_network, grants, PRICING)
        price = PRICING.price_per_cru(300.0, same_sp=False)  # 2 + 3 = 5
        # Profit accrues to the UE's SP (SP 0), not the BS owner.
        assert statement.by_sp[0].profit == pytest.approx(4 * (10.0 - 0.5 - price))
        assert statement.by_sp[1].profit == 0.0

    def test_total_is_sum_over_sps(self):
        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=0, sp_id=0),
                dict(ue_id=1, sp_id=1, position=Point(350.0, 0.0)),
            ]
        )
        grants = [
            Grant(bs_id=0, ue_id=0, service_id=0, crus=4, rrbs=1),
            Grant(bs_id=1, ue_id=1, service_id=0, crus=4, rrbs=1),
        ]
        statement = compute_profit(network, grants, PRICING)
        assert statement.total_profit == pytest.approx(
            statement.by_sp[0].profit + statement.by_sp[1].profit
        )
        assert statement.total_served_ues == 2

    def test_empty_grants_zero_profit(self, tiny_network):
        statement = compute_profit(tiny_network, [], PRICING)
        assert statement.total_profit == 0.0
        assert statement.profit_of(0) == 0.0
        assert statement.total_served_ues == 0

    def test_profit_of_unknown_sp_is_zero(self, tiny_network):
        statement = compute_profit(tiny_network, [], PRICING)
        assert statement.profit_of(42) == 0.0

    def test_eq16_makes_every_edge_grant_profitable(self, tiny_network):
        for bs_id in (0, 1):
            grants = [Grant(bs_id=bs_id, ue_id=0, service_id=0, crus=4, rrbs=1)]
            statement = compute_profit(tiny_network, grants, PRICING)
            assert statement.total_profit > 0.0


class TestMarginalProfit:
    def test_matches_compute_profit(self, tiny_network):
        for bs_id in (0, 1):
            grants = [Grant(bs_id=bs_id, ue_id=0, service_id=0, crus=4, rrbs=1)]
            statement = compute_profit(tiny_network, grants, PRICING)
            assert marginal_profit(
                tiny_network, 0, bs_id, PRICING
            ) == pytest.approx(statement.total_profit)

    def test_same_sp_closer_bs_is_most_profitable(self, tiny_network):
        assert marginal_profit(tiny_network, 0, 0, PRICING) > marginal_profit(
            tiny_network, 0, 1, PRICING
        )
