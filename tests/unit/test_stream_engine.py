"""Unit tests for the streaming stack: tapes, engines, dispatcher."""

import numpy as np
import pytest

from repro.dynamics.arrivals import (
    ExponentialHolding,
    PoissonArrivals,
)
from repro.dynamics.events import EventKind
from repro.errors import AllocationError, ConfigurationError
from repro.sim.config import ScenarioConfig
from repro.stream import (
    StreamConfig,
    StreamDispatcher,
    open_tape,
    run_stream,
)

CONFIG = ScenarioConfig.paper()

#: One BS with tight CRU capacity: arrivals saturate it quickly, so the
#: cloud set, the blocked-candidate index, and readmissions after
#: departures are all exercised.
SATURATED = ScenarioConfig(
    sp_count=1,
    bs_per_sp=1,
    region_side_m=300.0,
    cru_capacity_min=20,
    cru_capacity_max=20,
)


def light_stream(horizon=120.0, move_fraction=0.0):
    return StreamConfig(
        horizon_s=horizon,
        arrivals=PoissonArrivals(rate_per_s=1.5),
        holding=ExponentialHolding(mean_s=40.0),
        move_fraction=move_fraction,
    )


def saturating_stream(horizon=300.0, move_fraction=0.1):
    return StreamConfig(
        horizon_s=horizon,
        arrivals=PoissonArrivals(rate_per_s=0.5),
        holding=ExponentialHolding(mean_s=120.0),
        move_fraction=move_fraction,
    )


class TestChurnTape:
    def test_deterministic(self):
        a = open_tape(CONFIG, light_stream(move_fraction=0.3), seed=11)
        b = open_tape(CONFIG, light_stream(move_fraction=0.3), seed=11)
        assert np.array_equal(a.arrival_times, b.arrival_times)
        assert np.array_equal(a.holding_times, b.holding_times)
        assert a.move_times == b.move_times
        assert a.move_positions == b.move_positions

    def test_event_count_and_order(self):
        tape = open_tape(CONFIG, light_stream(move_fraction=0.3), seed=3)
        events = list(tape.events())
        assert len(events) == tape.event_count
        assert tape.event_count == 2 * tape.arrival_count + len(
            tape.move_times
        )
        times = [event.time_s for event in events]
        assert times == sorted(times)

    def test_every_arrival_departs(self):
        tape = open_tape(CONFIG, light_stream(), seed=4)
        arrived, departed = set(), set()
        for event in tape.events():
            if event.kind is EventKind.ARRIVAL:
                assert event.ue is not None
                assert event.ue.ue_id == event.ue_id
                arrived.add(event.ue_id)
            elif event.kind is EventKind.DEPARTURE:
                assert event.ue_id in arrived
                departed.add(event.ue_id)
        assert arrived == departed

    def test_moves_fall_inside_lifetime(self):
        tape = open_tape(CONFIG, light_stream(move_fraction=0.5), seed=5)
        for ue_id, move_s in tape.move_times.items():
            arrival = tape.arrival_times[ue_id]
            departure = arrival + tape.holding_times[ue_id]
            # The tape only emits the move when it lands strictly
            # inside the lifetime; the schedule must be drawn there.
            assert arrival <= move_s
            if arrival < move_s < departure:
                assert ue_id in tape.move_positions

    def test_arrival_ids_are_dense(self):
        tape = open_tape(CONFIG, light_stream(), seed=6)
        ids = [
            event.ue_id
            for event in tape.events()
            if event.kind is EventKind.ARRIVAL
        ]
        assert ids == list(range(tape.arrival_count))


class TestModeEquivalence:
    """The incremental engine must match the from-scratch oracle."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_saturated_parity_bit_exact(self, seed, monkeypatch):
        monkeypatch.setenv("DMRA_DEBUG_STREAM", "1")
        stream = saturating_stream()
        inc = run_stream(SATURATED, stream, seed=seed, mode="incremental")
        res = run_stream(SATURATED, stream, seed=seed, mode="rescratch")
        assert inc.digest == res.digest
        assert inc.admitted_edge == res.admitted_edge
        assert inc.admitted_cloud == res.admitted_cloud
        assert inc.readmitted == res.readmitted
        assert inc.cancelled == res.cancelled
        assert inc.displaced == res.displaced
        assert inc.total_profit == res.total_profit
        assert inc.profit_by_sp == res.profit_by_sp
        assert inc.edge_active.samples == res.edge_active.samples
        # The saturated config must actually exercise blocking and
        # readmission, otherwise this parity test proves nothing.
        assert inc.admitted_cloud > 0
        assert inc.readmitted > 0

    def test_paper_config_parity_with_moves(self, monkeypatch):
        monkeypatch.setenv("DMRA_DEBUG_STREAM", "1")
        stream = light_stream(move_fraction=0.2)
        inc = run_stream(CONFIG, stream, seed=7, mode="incremental")
        res = run_stream(CONFIG, stream, seed=7, mode="rescratch")
        assert inc.digest == res.digest
        assert inc.moves > 0

    def test_kernel_parity(self):
        stream = light_stream()
        obj = run_stream(CONFIG, stream, seed=2, kernel="object")
        soa = run_stream(CONFIG, stream, seed=2, kernel="soa")
        auto = run_stream(CONFIG, stream, seed=2, kernel="auto")
        assert obj.digest == soa.digest == auto.digest

    def test_sharded_parity(self):
        stream = light_stream(move_fraction=0.15)
        inc = run_stream(CONFIG, stream, seed=4, shards=4)
        res = run_stream(CONFIG, stream, seed=4, shards=4,
                         mode="rescratch")
        assert inc.digest == res.digest
        assert inc.shards == 4
        assert len(inc.shard_events) == 4
        assert sum(inc.shard_events) == inc.events_processed
        # Multiple tiles actually receive traffic.
        assert sum(1 for count in inc.shard_events if count) > 1

    def test_replay_deterministic(self):
        stream = light_stream(move_fraction=0.1)
        a = run_stream(CONFIG, stream, seed=9)
        b = run_stream(CONFIG, stream, seed=9)
        assert a.digest == b.digest
        assert a.total_profit == b.total_profit


class TestStreamOutcome:
    def test_counters_consistent(self):
        outcome = run_stream(CONFIG, light_stream(), seed=1)
        assert outcome.events_processed == (
            outcome.arrivals + outcome.departures + outcome.moves
        )
        assert outcome.admissions == (
            outcome.admitted_edge + outcome.admitted_cloud
        )
        assert outcome.admissions + outcome.cancelled == outcome.arrivals
        assert outcome.arrivals == outcome.departures
        assert 0.0 <= outcome.blocking_probability <= 1.0
        assert outcome.peak_active >= outcome.peak_edge_active

    def test_everything_drains_by_tape_end(self):
        outcome = run_stream(CONFIG, light_stream(), seed=2)
        assert outcome.edge_active.last_value == 0.0
        assert outcome.cloud_active.last_value == 0.0
        assert outcome.rrb_utilization.last_value == 0.0

    def test_series_stride_decimates_but_keeps_peaks(self):
        stream = light_stream()
        dense = run_stream(CONFIG, stream, seed=3, series_stride=1)
        sparse = run_stream(CONFIG, stream, seed=3, series_stride=8)
        assert len(sparse.edge_active) < len(dense.edge_active)
        assert sparse.peak_edge_active == dense.peak_edge_active
        assert sparse.peak_active == dense.peak_active
        assert sparse.digest == dense.digest


class TestDispatcherInternals:
    def test_blocked_index_drains_with_population(self):
        tape = open_tape(SATURATED, saturating_stream(), seed=2)
        dispatcher = StreamDispatcher(tape, mode="incremental")
        for event in dispatcher.events():
            dispatcher.dispatch(event)
        outcome = dispatcher.finish()
        assert outcome.admitted_cloud > 0
        # Every UE departed, so the blocked-candidate index and the
        # dirty set must have emptied themselves back out.
        for engine in dispatcher._engines:
            assert engine.blocked_index_size == 0
            assert not engine.dirty_ids
            assert engine.edge_active == 0
            assert engine.cloud_active == 0
            assert engine.used_rrbs == 0

    def test_out_of_order_event_rejected(self):
        tape = open_tape(CONFIG, light_stream(), seed=1)
        dispatcher = StreamDispatcher(tape)
        events = list(dispatcher.events())
        dispatcher.dispatch(events[1])
        with pytest.raises(AllocationError, match="non-decreasing"):
            dispatcher.dispatch(events[0])

    def test_departure_before_arrival_rejected(self):
        tape = open_tape(CONFIG, light_stream(), seed=1)
        dispatcher = StreamDispatcher(tape)
        departure = next(
            event for event in dispatcher.events()
            if event.kind is EventKind.DEPARTURE
        )
        with pytest.raises(AllocationError, match="never arrived"):
            dispatcher.dispatch(departure)


class TestValidation:
    def test_unknown_mode_rejected(self):
        tape = open_tape(CONFIG, light_stream(), seed=1)
        with pytest.raises(ConfigurationError, match="mode"):
            StreamDispatcher(tape, mode="oracle")

    def test_unknown_kernel_rejected(self):
        tape = open_tape(CONFIG, light_stream(), seed=1)
        with pytest.raises(ConfigurationError, match="kernel"):
            StreamDispatcher(tape, kernel="simd")

    def test_bad_shards_rejected(self):
        tape = open_tape(CONFIG, light_stream(), seed=1)
        with pytest.raises(ConfigurationError, match="shards"):
            StreamDispatcher(tape, shards=0)

    def test_bad_stream_config_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamConfig(horizon_s=0.0)
        with pytest.raises(ConfigurationError):
            StreamConfig(move_fraction=1.5)
