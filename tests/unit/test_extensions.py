"""Unit tests for the extension experiments."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.extensions import (
    EXTENSIONS,
    all_experiments,
    get_extension,
)
from repro.experiments.figures import EXPERIMENTS, Scale


class TestRegistry:
    def test_extensions_registered(self):
        assert set(EXTENSIONS) == {
            "ext-iota",
            "ext-coverage",
            "ext-noise",
            "ext-blocking",
            "ext-scaling",
            "ext-staleness",
            "ext-failures",
            "ext-gap",
        }

    def test_unknown_extension_rejected(self):
        with pytest.raises(ConfigurationError):
            get_extension("ext-nope")

    def test_merged_registry_is_disjoint_union(self):
        merged = all_experiments()
        assert set(merged) == set(EXPERIMENTS) | set(EXTENSIONS)
        assert not set(EXPERIMENTS) & set(EXTENSIONS)

    def test_every_extension_has_metadata(self):
        for experiment in EXTENSIONS.values():
            assert experiment.title.startswith("Extension:")
            assert experiment.x_label
            assert experiment.y_label


class TestExtensionRuns:
    """Smoke-scale runs asserting each extension's expected shape."""

    def test_ext_iota_mechanism(self):
        result = get_extension("ext-iota").run(Scale.smoke())
        same_sp = result["same-sp %"]
        # The defining mechanism: higher markup -> more own-BS traffic.
        assert same_sp.means[-1] > same_sp.means[0]
        profit = result["profit"]
        assert all(v > 0 for v in profit.means)

    def test_ext_coverage_all_positive(self):
        result = get_extension("ext-coverage").run(Scale.smoke())
        series = result["dmra"]
        assert len(series.points) == 5
        assert all(v > 0 for v in series.means)

    def test_ext_noise_paper_regime_serves_more(self):
        result = get_extension("ext-noise").run(Scale.smoke())
        paper = result["paper -170 dBm"]
        thermal = result["thermal floor"]
        for x in paper.xs:
            assert paper.value_at(x).mean >= thermal.value_at(x).mean

    def test_ext_blocking_is_monotone_erlang(self):
        result = get_extension("ext-blocking").run(Scale.smoke())
        series = result["blocking %"]
        assert series.means[-1] >= series.means[0]
        assert all(0.0 <= v <= 100.0 for v in series.means)

    def test_ext_staleness_rounds_grow(self):
        result = get_extension("ext-staleness").run(Scale.smoke())
        rounds = result["rounds"]
        assert rounds.means[-1] >= rounds.means[0]
        profit = result["profit"]
        # Staleness must not collapse quality.
        assert min(profit.means) >= 0.95 * max(profit.means)

    def test_ext_failures_profit_retention_decreases(self):
        result = get_extension("ext-failures").run(Scale.smoke())
        retained = result["profit retained %"]
        assert retained.value_at(0.0).mean == 100.0
        values = list(retained.means)
        assert values[-1] <= values[0]
        assert all(0.0 <= v <= 100.0 for v in values)

    def test_ext_gap_certifies_a_small_ceiling(self):
        result = get_extension("ext-gap").run(Scale.smoke())
        gap = result["certified gap %"]
        # A certified gap is a ceiling: nonnegative, and DMRA should sit
        # well within 50% of the upper bound at smoke loads.
        assert all(0.0 <= v <= 50.0 for v in gap.means)
        auction = result["auction profit %"]
        assert all(v > 0.0 for v in auction.means)

    def test_ext_scaling_density_helps_price_aware_schemes(self):
        result = get_extension("ext-scaling").run(Scale.smoke())
        # Densification helps schemes that exploit proximity...
        for label in ("dmra", "nonco"):
            series = result[label]
            assert series.means[-1] >= series.means[0]
        # ...but *hurts* DCSP: with more BSs, the least-occupied BS a UE
        # chases is on average farther away, and DCSP ignores the
        # distance price it pays for that.
        dcsp = result["dcsp"]
        assert dcsp.means[-1] <= dcsp.means[0]
        # DMRA dominates everyone at every density *within the paper's
        # load regime* (smoke scale keeps offered load below capacity;
        # at paper scale the sparsest deployments are overloaded 2-3x
        # and nearest-BS packing wins there — see EXPERIMENTS.md).
        for x in result["dmra"].xs:
            assert result["dmra"].value_at(x).mean >= result["dcsp"].value_at(x).mean
            assert result["dmra"].value_at(x).mean >= result["nonco"].value_at(x).mean
