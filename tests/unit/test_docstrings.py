"""Documentation coverage: every public item carries a docstring.

Not a style nicety — the deliverable includes documented public APIs,
and this test keeps that true as the library grows.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")[1:]):
            continue
        yield importlib.import_module(info.name)


MODULES = list(_public_modules())


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module.__name__} lacks a module docstring"
    )


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
def test_public_classes_and_functions_documented(module):
    undocumented: list[str] = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                # getattr + getdoc honours docstrings inherited from
                # abstract bases (Allocator.allocate etc.).
                doc = inspect.getdoc(getattr(obj, method_name))
                if not (doc and doc.strip()):
                    undocumented.append(
                        f"{module.__name__}.{name}.{method_name}"
                    )
    assert not undocumented, f"undocumented public items: {undocumented}"
