"""Unit tests for the report generator and the extra CLI subcommands."""

import pytest

from repro.analysis.report import scenario_report
from repro.baselines.nonco import NonCoAllocator
from repro.cli import main
from repro.core.dmra import DMRAAllocator
from repro.errors import ConfigurationError


class TestScenarioReport:
    def test_report_structure(self, small_scenario):
        report = scenario_report(
            small_scenario,
            [
                DMRAAllocator(pricing=small_scenario.pricing),
                NonCoAllocator(),
            ],
        )
        assert report.startswith("# Scenario report")
        assert "## Scheme comparison" in report
        assert "## Profit decomposition (Eq. 5) per SP" in report
        assert "## DMRA convergence" in report
        assert "| dmra |" in report
        assert "| nonco |" in report

    def test_report_without_dmra_skips_convergence(self, small_scenario):
        report = scenario_report(small_scenario, [NonCoAllocator()])
        assert "## DMRA convergence" not in report
        assert "| nonco |" in report

    def test_decomposition_identity_in_report(self, small_scenario):
        """Every decomposition row satisfies W_k = W_k^r - W_k^B - W_k^S."""
        report = scenario_report(
            small_scenario, [DMRAAllocator(pricing=small_scenario.pricing)]
        )
        in_table = False
        checked = 0
        for line in report.splitlines():
            if line.startswith("## Profit decomposition"):
                in_table = True
                continue
            if in_table and line.startswith("| dmra |"):
                cells = [c.strip() for c in line.split("|")[1:-1]]
                _, _, revenue, payments, other, profit = cells
                assert float(profit) == pytest.approx(
                    float(revenue) - float(payments) - float(other),
                    abs=0.11,  # values are rounded to one decimal
                )
                checked += 1
        assert checked == 5  # one row per SP

    def test_empty_allocators_rejected(self, small_scenario):
        with pytest.raises(ConfigurationError):
            scenario_report(small_scenario, [])


class TestReportCli:
    def test_report_to_stdout(self, capsys):
        assert main(["report", "--ues", "60", "--allocators", "dmra"]) == 0
        out = capsys.readouterr().out
        assert "# Scenario report" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "sub" / "report.md"
        assert (
            main(
                [
                    "report", "--ues", "60",
                    "--allocators", "dmra", "nonco",
                    "--out", str(target),
                ]
            )
            == 0
        )
        assert target.exists()
        assert "## Scheme comparison" in target.read_text()


class TestAnalyzeOnlineCli:
    def test_analyze_command(self, capsys):
        assert main(["analyze", "--ues", "80", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "envy pairs:" in out
        assert "Jain fairness:" in out
        assert "signalling:" in out

    def test_online_command(self, capsys):
        assert (
            main(
                [
                    "online", "--rate", "1.0", "--horizon", "60",
                    "--holding", "20", "--seed", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "blocking prob.:" in out
        assert "profit rate:" in out

    def test_figure_extensions_alias(self, capsys):
        # 'extensions' must be a recognized figure group (run the
        # cheapest one directly to keep the test fast).
        assert main(["figure", "ext-blocking", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "blocking" in out

    def test_figure_unknown_id_raises(self):
        with pytest.raises(ConfigurationError):
            main(["figure", "nope", "--scale", "smoke"])
