"""Unit tests for BS failure injection."""

import pytest

from repro.dynamics.failures import inject_bs_failures
from repro.errors import ConfigurationError, UnknownEntityError
from repro.sim.config import ScenarioConfig

CONFIG = ScenarioConfig.paper()


class TestFailureInjection:
    def test_single_failure_under_light_load_fully_recovers(self):
        outcome = inject_bs_failures(
            CONFIG, ue_count=200, failed_bs_ids=[0], seed=1
        )
        assert outcome.failed_bs_ids == (0,)
        assert outcome.recovery_fraction == 1.0
        assert outcome.dropped_to_cloud == 0
        assert outcome.edge_served_after == outcome.edge_served_before

    def test_profit_never_increases_after_failure(self):
        for count in (1, 3, 6):
            outcome = inject_bs_failures(
                CONFIG,
                ue_count=700,
                failed_bs_ids=list(range(count)),
                seed=2,
            )
            assert outcome.profit_after <= outcome.profit_before + 1e-6

    def test_damage_grows_with_failure_count(self):
        losses = []
        for count in (1, 4, 8):
            outcome = inject_bs_failures(
                CONFIG,
                ue_count=800,
                failed_bs_ids=list(range(count)),
                seed=1,
            )
            losses.append(outcome.profit_loss)
        assert losses == sorted(losses)

    def test_orphans_partition_into_recovered_and_dropped(self):
        outcome = inject_bs_failures(
            CONFIG, ue_count=800, failed_bs_ids=[0, 5, 10], seed=3
        )
        assert (
            outcome.recovered_ues + outcome.dropped_to_cloud
            == outcome.orphaned_ues
        )

    def test_unknown_bs_rejected(self):
        with pytest.raises(UnknownEntityError):
            inject_bs_failures(CONFIG, 100, failed_bs_ids=[999], seed=1)

    def test_total_failure_rejected(self):
        with pytest.raises(ConfigurationError):
            inject_bs_failures(
                CONFIG, 100, failed_bs_ids=list(range(25)), seed=1
            )

    def test_duplicate_ids_deduplicated(self):
        outcome = inject_bs_failures(
            CONFIG, 200, failed_bs_ids=[3, 3, 3], seed=1
        )
        assert outcome.failed_bs_ids == (3,)

    def test_deterministic(self):
        a = inject_bs_failures(CONFIG, 400, failed_bs_ids=[2, 7], seed=5)
        b = inject_bs_failures(CONFIG, 400, failed_bs_ids=[2, 7], seed=5)
        assert a == b

    def test_failing_idle_bs_is_harmless(self):
        """Failing a BS that served nobody costs nothing."""
        # At 30 UEs most BSs are idle; find one with no grants by
        # checking the unfailed allocation's profit is preserved.
        baseline = inject_bs_failures(
            CONFIG, ue_count=30, failed_bs_ids=[24], seed=4
        )
        if baseline.orphaned_ues == 0:
            assert baseline.profit_loss == pytest.approx(0.0)
            assert baseline.recovery_fraction == 1.0

    def test_recovery_fraction_bounds(self):
        outcome = inject_bs_failures(
            CONFIG, ue_count=1000, failed_bs_ids=[0, 1, 2, 3], seed=6
        )
        assert 0.0 <= outcome.recovery_fraction <= 1.0
        assert 0.0 <= outcome.profit_loss_fraction <= 1.0
