"""Unit tests for BS failure injection."""

import pytest

from repro.dynamics.failures import inject_bs_failures
from repro.errors import ConfigurationError, UnknownEntityError
from repro.sim.config import ScenarioConfig

CONFIG = ScenarioConfig.paper()


class TestFailureInjection:
    def test_single_failure_under_light_load_fully_recovers(self):
        outcome = inject_bs_failures(
            CONFIG, ue_count=200, failed_bs_ids=[0], seed=1
        )
        assert outcome.failed_bs_ids == (0,)
        assert outcome.recovery_fraction == 1.0
        assert outcome.dropped_to_cloud == 0
        assert outcome.edge_served_after == outcome.edge_served_before

    def test_profit_never_increases_after_failure(self):
        for count in (1, 3, 6):
            outcome = inject_bs_failures(
                CONFIG,
                ue_count=700,
                failed_bs_ids=list(range(count)),
                seed=2,
            )
            assert outcome.profit_after <= outcome.profit_before + 1e-6

    def test_damage_grows_with_failure_count(self):
        losses = []
        for count in (1, 4, 8):
            outcome = inject_bs_failures(
                CONFIG,
                ue_count=800,
                failed_bs_ids=list(range(count)),
                seed=1,
            )
            losses.append(outcome.profit_loss)
        assert losses == sorted(losses)

    def test_orphans_partition_into_recovered_and_dropped(self):
        outcome = inject_bs_failures(
            CONFIG, ue_count=800, failed_bs_ids=[0, 5, 10], seed=3
        )
        assert (
            outcome.recovered_ues + outcome.dropped_to_cloud
            == outcome.orphaned_ues
        )

    def test_unknown_bs_rejected(self):
        with pytest.raises(UnknownEntityError):
            inject_bs_failures(CONFIG, 100, failed_bs_ids=[999], seed=1)

    def test_total_failure_rejected(self):
        with pytest.raises(ConfigurationError):
            inject_bs_failures(
                CONFIG, 100, failed_bs_ids=list(range(25)), seed=1
            )

    def test_duplicate_ids_deduplicated(self):
        outcome = inject_bs_failures(
            CONFIG, 200, failed_bs_ids=[3, 3, 3], seed=1
        )
        assert outcome.failed_bs_ids == (3,)

    def test_deterministic(self):
        a = inject_bs_failures(CONFIG, 400, failed_bs_ids=[2, 7], seed=5)
        b = inject_bs_failures(CONFIG, 400, failed_bs_ids=[2, 7], seed=5)
        assert a == b

    def test_failing_idle_bs_is_harmless(self):
        """Failing a BS that served nobody costs nothing."""
        # At 30 UEs most BSs are idle; find one with no grants by
        # checking the unfailed allocation's profit is preserved.
        baseline = inject_bs_failures(
            CONFIG, ue_count=30, failed_bs_ids=[24], seed=4
        )
        if baseline.orphaned_ues == 0:
            assert baseline.profit_loss == pytest.approx(0.0)
            assert baseline.recovery_fraction == 1.0

    def test_recovery_fraction_bounds(self):
        outcome = inject_bs_failures(
            CONFIG, ue_count=1000, failed_bs_ids=[0, 1, 2, 3], seed=6
        )
        assert 0.0 <= outcome.recovery_fraction <= 1.0
        assert 0.0 <= outcome.profit_loss_fraction <= 1.0


class TestProfitLossFraction:
    @staticmethod
    def _outcome(profit_before, profit_after):
        from repro.dynamics.failures import FailureOutcome

        return FailureOutcome(
            failed_bs_ids=(0,),
            orphaned_ues=0,
            recovered_ues=0,
            dropped_to_cloud=0,
            profit_before=profit_before,
            profit_after=profit_after,
            edge_served_before=0,
            edge_served_after=0,
        )

    def test_positive_profit_loss(self):
        assert self._outcome(100.0, 75.0).profit_loss_fraction == (
            pytest.approx(0.25)
        )

    def test_negative_profit_scenario_keeps_sign(self):
        # Regression: with profit_before < 0, dividing by the signed
        # value flipped the sign — a worsening outage (-100 -> -150)
        # read as a 50% *gain*.
        outcome = self._outcome(-100.0, -150.0)
        assert outcome.profit_loss == pytest.approx(50.0)
        assert outcome.profit_loss_fraction == pytest.approx(0.5)

    def test_negative_profit_improvement_is_negative_fraction(self):
        assert self._outcome(-100.0, -50.0).profit_loss_fraction == (
            pytest.approx(-0.5)
        )

    def test_zero_profit_before_is_zero(self):
        assert self._outcome(0.0, -10.0).profit_loss_fraction == 0.0


class TestFailureGrantInvariants:
    def test_survivor_grants_carried_over_untouched(self):
        """UEs on healthy BSs keep exactly their pre-failure grants."""
        from repro.core.dmra import DMRAAllocator
        from repro.sim.runner import run_allocation
        from repro.sim.scenario import build_scenario

        failed = (0, 5)
        outcome = inject_bs_failures(
            CONFIG, ue_count=500, failed_bs_ids=list(failed), seed=3
        )
        scenario = build_scenario(CONFIG, 500, seed=3)
        baseline = run_allocation(
            scenario,
            DMRAAllocator(pricing=scenario.pricing, rho=CONFIG.rho),
        ).assignment
        expected = {g for g in baseline.grants if g.bs_id not in failed}
        assert set(outcome.carried_grants) == expected

    def test_no_grant_references_a_failed_bs(self):
        outcome = inject_bs_failures(
            CONFIG, ue_count=600, failed_bs_ids=[1, 2], seed=4
        )
        for grant in outcome.carried_grants + outcome.repair_grants:
            assert grant.bs_id not in outcome.failed_bs_ids

    def test_recovered_plus_dropped_equals_orphaned(self):
        for seed in (1, 2, 3):
            outcome = inject_bs_failures(
                CONFIG, ue_count=700, failed_bs_ids=[0, 3, 9], seed=seed
            )
            assert (
                outcome.recovered_ues + outcome.dropped_to_cloud
                == outcome.orphaned_ues
            )

    def test_edge_served_after_counts_all_live_grants(self):
        outcome = inject_bs_failures(
            CONFIG, ue_count=400, failed_bs_ids=[2], seed=5
        )
        assert outcome.edge_served_after == (
            len(outcome.carried_grants) + len(outcome.repair_grants)
        )
