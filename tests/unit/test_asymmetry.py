"""Unit tests for asymmetric per-SP fleet sizes."""

import pytest

from repro.core.dmra import DMRAAllocator
from repro.errors import ConfigurationError
from repro.sim.config import ScenarioConfig
from repro.sim.runner import run_allocation
from repro.sim.scenario import build_scenario


class TestOwnershipInterleaving:
    def test_symmetric_default_cycles_sps(self):
        ownership = ScenarioConfig.paper().bs_ownership()
        assert ownership == tuple(i % 5 for i in range(25))

    def test_asymmetric_counts_respected(self):
        config = ScenarioConfig.paper(sp_bs_counts=(13, 3, 3, 3, 3))
        ownership = config.bs_ownership()
        assert len(ownership) == 25
        assert ownership.count(0) == 13
        for sp_id in range(1, 5):
            assert ownership.count(sp_id) == 3

    def test_big_fleet_interleaved_not_clumped(self):
        """The dominant SP's BSs must spread across the index range (and
        hence across the grid), not occupy a contiguous prefix."""
        config = ScenarioConfig.paper(sp_bs_counts=(13, 3, 3, 3, 3))
        ownership = config.bs_ownership()
        positions = [i for i, sp in enumerate(ownership) if sp == 0]
        assert positions[0] < 5
        assert positions[-1] >= 20
        gaps = [b - a for a, b in zip(positions, positions[1:])]
        # With a 13/25 share, SP-0 sites recur every ~2 slots on average;
        # the worst drought (where the four small SPs bunch) stays short.
        assert max(gaps) <= 5

    def test_bs_count_property(self):
        config = ScenarioConfig.paper(sp_bs_counts=(10, 5, 4, 3, 3))
        assert config.bs_count == 25

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig.paper(sp_bs_counts=(5, 5))  # wrong arity
        with pytest.raises(ConfigurationError):
            ScenarioConfig.paper(sp_bs_counts=(25, 0, 0, 0, 0))


class TestAsymmetricScenarios:
    def test_network_reflects_fleet_sizes(self):
        config = ScenarioConfig.paper(sp_bs_counts=(13, 3, 3, 3, 3))
        scenario = build_scenario(config, 100, 1)
        assert len(scenario.network.base_stations_of_sp(0)) == 13
        assert len(scenario.network.base_stations_of_sp(4)) == 3
        assert scenario.network.bs_count == 25

    def test_allocation_runs_and_validates(self):
        config = ScenarioConfig.paper(
            sp_bs_counts=(13, 3, 3, 3, 3), placement="random"
        )
        scenario = build_scenario(config, 400, 2)
        outcome = run_allocation(
            scenario, DMRAAllocator(pricing=scenario.pricing)
        )
        assert outcome.metrics.total_profit > 0

    def test_infrastructure_advantage_shows_in_margin(self):
        """The SP owning most of the edge should earn at least as much
        per subscriber as the small operators (its users find cheap
        same-SP capacity more often)."""
        config = ScenarioConfig.paper(sp_bs_counts=(13, 3, 3, 3, 3))
        big_margin = 0.0
        small_margin = 0.0
        for seed in range(3):
            scenario = build_scenario(config, 700, seed)
            metrics = run_allocation(
                scenario, DMRAAllocator(pricing=scenario.pricing)
            ).metrics
            for sp_id, profit in metrics.profit_by_sp.items():
                subscribers = len(
                    scenario.network.user_equipments_of_sp(sp_id)
                )
                if subscribers == 0:
                    continue
                if sp_id == 0:
                    big_margin += profit / subscribers
                else:
                    small_margin += profit / subscribers / 4
        assert big_margin >= small_margin
