"""Unit tests for the Assignment result type and its TPM validation."""

import pytest

from conftest import make_tiny_network
from repro.compute.cru import Grant
from repro.core.assignment import Assignment
from repro.errors import AllocationError
from repro.model.geometry import Point
from repro.radio.channel import build_radio_map
from repro.radio.sinr import LinkBudget


def grant_for(network, radio_map, ue_id, bs_id):
    ue = network.user_equipment(ue_id)
    return Grant(
        bs_id=bs_id,
        ue_id=ue_id,
        service_id=ue.service_id,
        crus=ue.cru_demand,
        rrbs=radio_map.link(ue_id, bs_id).rrbs_required,
    )


class TestConstruction:
    def test_duplicate_ue_grants_rejected(self):
        g = Grant(bs_id=0, ue_id=0, service_id=0, crus=4, rrbs=1)
        h = Grant(bs_id=1, ue_id=0, service_id=0, crus=4, rrbs=1)
        with pytest.raises(AllocationError, match="Eq. 15"):
            Assignment(grants=(g, h), cloud_ue_ids=frozenset())

    def test_ue_cannot_be_both_served_and_forwarded(self):
        g = Grant(bs_id=0, ue_id=0, service_id=0, crus=4, rrbs=1)
        with pytest.raises(AllocationError, match="both"):
            Assignment(grants=(g,), cloud_ue_ids=frozenset({0}))

    def test_queries(self, tiny_network, tiny_radio_map):
        g = grant_for(tiny_network, tiny_radio_map, 0, 0)
        assignment = Assignment(grants=(g,), cloud_ue_ids=frozenset(), rounds=3)
        assert assignment.serving_bs(0) == 0
        assert assignment.serving_bs(99) is None
        assert assignment.grant_of(0) == g
        assert assignment.grants_of_bs(0) == (g,)
        assert assignment.grants_of_bs(1) == ()
        assert assignment.edge_served_count == 1
        assert assignment.cloud_count == 0
        assert assignment.rounds == 3
        assert assignment.association_pairs() == ((0, 0),)

    def test_from_grants_forwards_the_rest(self):
        g = Grant(bs_id=0, ue_id=0, service_id=0, crus=4, rrbs=1)
        assignment = Assignment.from_grants([g], all_ue_ids=[0, 1, 2])
        assert assignment.edge_served_ue_ids == {0}
        assert assignment.cloud_ue_ids == {1, 2}


class TestValidation:
    def test_valid_assignment_passes(self, tiny_network, tiny_radio_map):
        g = grant_for(tiny_network, tiny_radio_map, 0, 0)
        Assignment(grants=(g,), cloud_ue_ids=frozenset()).validate(
            tiny_network, tiny_radio_map
        )

    def test_all_cloud_passes(self, tiny_network, tiny_radio_map):
        Assignment(grants=(), cloud_ue_ids=frozenset({0})).validate(
            tiny_network, tiny_radio_map
        )

    def test_missing_ue_detected(self, tiny_network, tiny_radio_map):
        assignment = Assignment(grants=(), cloud_ue_ids=frozenset())
        with pytest.raises(AllocationError, match="neither served"):
            assignment.validate(tiny_network, tiny_radio_map)

    def test_unknown_ue_detected(self, tiny_network, tiny_radio_map):
        assignment = Assignment(grants=(), cloud_ue_ids=frozenset({0, 77}))
        with pytest.raises(AllocationError, match="unknown UEs"):
            assignment.validate(tiny_network, tiny_radio_map)

    def test_wrong_service_detected(self, tiny_network, tiny_radio_map):
        g = Grant(bs_id=0, ue_id=0, service_id=1, crus=4, rrbs=1)
        with pytest.raises(AllocationError, match="requests service"):
            Assignment(grants=(g,), cloud_ue_ids=frozenset()).validate(
                tiny_network, tiny_radio_map
            )

    def test_unhosted_service_detected(self, tiny_radio_map):
        network = make_tiny_network(
            bs_specs=[
                dict(bs_id=0, sp_id=0, position=Point(0, 0), cru_capacity={1: 20}),
                dict(bs_id=1, sp_id=1, position=Point(400, 0)),
            ]
        )
        radio_map = build_radio_map(network, LinkBudget())
        g = Grant(bs_id=0, ue_id=0, service_id=0, crus=4, rrbs=1)
        with pytest.raises(AllocationError, match="Eq. 13"):
            Assignment(grants=(g,), cloud_ue_ids=frozenset()).validate(
                network, radio_map
            )

    def test_out_of_coverage_detected(self):
        network = make_tiny_network(coverage_radius_m=150.0)
        radio_map = build_radio_map(network, LinkBudget())
        g = Grant(bs_id=1, ue_id=0, service_id=0, crus=4, rrbs=1)
        with pytest.raises(AllocationError, match="cover"):
            Assignment(grants=(g,), cloud_ue_ids=frozenset()).validate(
                network, radio_map
            )

    def test_wrong_cru_amount_detected(self, tiny_network, tiny_radio_map):
        good = grant_for(tiny_network, tiny_radio_map, 0, 0)
        bad = Grant(
            bs_id=good.bs_id,
            ue_id=good.ue_id,
            service_id=good.service_id,
            crus=good.crus + 1,
            rrbs=good.rrbs,
        )
        with pytest.raises(AllocationError, match="CRUs"):
            Assignment(grants=(bad,), cloud_ue_ids=frozenset()).validate(
                tiny_network, tiny_radio_map
            )

    def test_wrong_rrb_amount_detected(self, tiny_network, tiny_radio_map):
        good = grant_for(tiny_network, tiny_radio_map, 0, 0)
        bad = Grant(
            bs_id=good.bs_id,
            ue_id=good.ue_id,
            service_id=good.service_id,
            crus=good.crus,
            rrbs=good.rrbs + 1,
        )
        with pytest.raises(AllocationError, match="RRBs"):
            Assignment(grants=(bad,), cloud_ue_ids=frozenset()).validate(
                tiny_network, tiny_radio_map
            )

    def test_cru_capacity_overflow_detected(self):
        # 3 UEs x 8 CRUs = 24 > the BS's 20-CRU pool for service 0.
        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=i, cru_demand=8, position=Point(50.0 + i, 0.0))
                for i in range(3)
            ]
        )
        radio_map = build_radio_map(network, LinkBudget())
        grants = tuple(grant_for(network, radio_map, i, 0) for i in range(3))
        with pytest.raises(AllocationError, match="Eq. 12"):
            Assignment(grants=grants, cloud_ue_ids=frozenset()).validate(
                network, radio_map
            )

    def test_rrb_capacity_overflow_detected(self):
        # Many high-rate UEs on a tiny 3-RRB budget.
        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=i, rate_demand_bps=6e6, position=Point(40.0 + i, 0.0))
                for i in range(4)
            ],
            bs_specs=[
                dict(bs_id=0, sp_id=0, position=Point(0, 0), rrb_capacity=3),
                dict(bs_id=1, sp_id=1, position=Point(400, 0)),
            ],
        )
        radio_map = build_radio_map(network, LinkBudget())
        grants = tuple(grant_for(network, radio_map, i, 0) for i in range(4))
        with pytest.raises(AllocationError, match="Eq. 14"):
            Assignment(grants=grants, cloud_ue_ids=frozenset()).validate(
                network, radio_map
            )
