"""Unit tests for outcome metrics and the allocation runner."""

import pytest

from repro.baselines.cloud_only import CloudOnlyAllocator
from repro.core.allocator import Allocator
from repro.core.assignment import Assignment
from repro.core.dmra import DMRAAllocator
from repro.econ.accounting import compute_profit
from repro.errors import AllocationError
from repro.sim.metrics import compute_metrics
from repro.sim.runner import run_allocation


class TestComputeMetrics:
    def test_metrics_consistent_with_assignment(self, small_scenario):
        allocator = DMRAAllocator(pricing=small_scenario.pricing)
        assignment = allocator.allocate(
            small_scenario.network, small_scenario.radio_map
        )
        metrics = compute_metrics(
            small_scenario.network, assignment, small_scenario.pricing
        )
        assert metrics.edge_served == assignment.edge_served_count
        assert metrics.cloud_forwarded == assignment.cloud_count
        assert metrics.ue_count == small_scenario.ue_count
        assert 0.0 <= metrics.same_sp_fraction <= 1.0
        assert 0.0 <= metrics.mean_cru_utilization <= 1.0
        assert 0.0 <= metrics.mean_rrb_utilization <= 1.0
        assert metrics.rounds == assignment.rounds

    def test_profit_matches_accounting(self, small_scenario):
        allocator = DMRAAllocator(pricing=small_scenario.pricing)
        assignment = allocator.allocate(
            small_scenario.network, small_scenario.radio_map
        )
        metrics = compute_metrics(
            small_scenario.network, assignment, small_scenario.pricing
        )
        statement = compute_profit(
            small_scenario.network, assignment.grants, small_scenario.pricing
        )
        assert metrics.total_profit == pytest.approx(statement.total_profit)
        assert metrics.total_profit == pytest.approx(
            sum(metrics.profit_by_sp.values())
        )

    def test_forwarded_traffic_sums_cloud_demands(self, small_scenario):
        assignment = CloudOnlyAllocator().allocate(
            small_scenario.network, small_scenario.radio_map
        )
        metrics = compute_metrics(
            small_scenario.network, assignment, small_scenario.pricing
        )
        expected = sum(
            ue.rate_demand_bps
            for ue in small_scenario.network.user_equipments
        )
        assert metrics.forwarded_traffic_bps == pytest.approx(expected)
        assert metrics.forwarded_crus == sum(
            ue.cru_demand for ue in small_scenario.network.user_equipments
        )
        assert metrics.edge_served_fraction == 0.0
        assert metrics.total_profit == 0.0

    def test_same_sp_fraction_counts_ownership(self, small_scenario):
        allocator = DMRAAllocator(pricing=small_scenario.pricing)
        assignment = allocator.allocate(
            small_scenario.network, small_scenario.radio_map
        )
        metrics = compute_metrics(
            small_scenario.network, assignment, small_scenario.pricing
        )
        manual = sum(
            1
            for g in assignment.grants
            if small_scenario.network.same_sp(g.ue_id, g.bs_id)
        ) / len(assignment.grants)
        assert metrics.same_sp_fraction == pytest.approx(manual)


class TestRunAllocation:
    def test_outcome_fields(self, small_scenario):
        outcome = run_allocation(
            small_scenario, DMRAAllocator(pricing=small_scenario.pricing)
        )
        assert outcome.allocator_name == "dmra"
        assert outcome.scenario_seed == small_scenario.seed
        assert outcome.ue_count == small_scenario.ue_count
        assert outcome.wall_time_s >= 0.0

    def test_invalid_allocator_caught(self, small_scenario):
        class BrokenAllocator(Allocator):
            name = "broken"

            def allocate(self, network, radio_map):
                # Claims a grant that violates the CRU-amount rule.
                from repro.compute.cru import Grant

                ue = network.user_equipments[0]
                bad = Grant(
                    bs_id=network.candidate_base_stations(ue.ue_id)[0],
                    ue_id=ue.ue_id,
                    service_id=ue.service_id,
                    crus=ue.cru_demand + 1,
                    rrbs=1,
                )
                return Assignment.from_grants(
                    [bad], [u.ue_id for u in network.user_equipments]
                )

        with pytest.raises(AllocationError):
            run_allocation(small_scenario, BrokenAllocator())

    def test_validation_can_be_skipped(self, small_scenario):
        outcome = run_allocation(
            small_scenario,
            DMRAAllocator(pricing=small_scenario.pricing),
            validate=False,
        )
        assert outcome.metrics.total_profit > 0
