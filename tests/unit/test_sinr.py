"""Unit tests for the link budget (received power, noise, SINR)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.radio.interference import ConstantInterference
from repro.radio.pathloss import PaperPathLoss
from repro.radio.sinr import (
    LinkBudget,
    noise_power_mw,
    received_power_mw,
    thermal_noise_dbm,
)
from repro.radio.units import dbm_to_mw


class TestReceivedPower:
    def test_zero_loss_passes_power_through(self):
        assert received_power_mw(10.0, 0.0) == pytest.approx(10.0)

    def test_known_loss(self):
        # 10 dBm through 110 dB of loss = -100 dBm = 1e-10 mW.
        assert received_power_mw(10.0, 110.0) == pytest.approx(1e-10)

    def test_more_loss_less_power(self):
        assert received_power_mw(10.0, 120.0) < received_power_mw(10.0, 100.0)


class TestNoise:
    def test_density_integration(self):
        assert noise_power_mw(-170.0, 180e3) == pytest.approx(1e-17 * 180e3)

    def test_invalid_bandwidth(self):
        with pytest.raises(ConfigurationError):
            noise_power_mw(-170.0, 0.0)

    def test_thermal_noise_for_one_rrb(self):
        # kTB for 180 kHz at 290 K is about -121.4 dBm.
        assert thermal_noise_dbm(180e3) == pytest.approx(-121.4, abs=0.1)

    def test_thermal_noise_figure_added(self):
        assert thermal_noise_dbm(180e3, noise_figure_db=7.0) == pytest.approx(
            -114.4, abs=0.1
        )


class TestLinkBudget:
    def test_paper_defaults(self):
        budget = LinkBudget()
        assert isinstance(budget.pathloss, PaperPathLoss)
        assert budget.noise_dbm == -170.0
        assert budget.rrb_bandwidth_hz == 180e3
        assert budget.noise_mw == pytest.approx(dbm_to_mw(-170.0))

    def test_sinr_matches_manual_computation(self):
        budget = LinkBudget()
        distance = 300.0
        loss_db = PaperPathLoss().loss_db(distance)
        expected = (dbm_to_mw(10.0) / 10 ** (loss_db / 10)) / dbm_to_mw(-170.0)
        assert budget.sinr(distance, tx_power_dbm=10.0) == pytest.approx(expected)

    def test_sinr_decreases_with_distance(self):
        budget = LinkBudget()
        values = [budget.sinr(d, 10.0) for d in (10, 50, 100, 300, 500, 1000)]
        assert values == sorted(values, reverse=True)

    def test_sinr_increases_with_tx_power(self):
        budget = LinkBudget()
        assert budget.sinr(100.0, 20.0) > budget.sinr(100.0, 10.0)

    def test_sinr_regime_is_high_snr(self):
        """With the paper's parameters every in-region link has SNR > 45 dB,
        which is what makes RRB demand almost distance-flat (DESIGN.md)."""
        budget = LinkBudget()
        assert budget.sinr_db(500.0, 10.0) > 45.0
        assert budget.sinr_db(1200.0, 10.0) > 30.0

    def test_interference_lowers_sinr(self):
        quiet = LinkBudget()
        noisy = LinkBudget(interference=ConstantInterference(floor_dbm=-120.0))
        assert noisy.sinr(100.0, 10.0) < quiet.sinr(100.0, 10.0)

    def test_sinr_db_consistency(self):
        budget = LinkBudget()
        linear = budget.sinr(200.0, 10.0)
        assert budget.sinr_db(200.0, 10.0) == pytest.approx(
            10 * math.log10(linear)
        )

    def test_negative_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkBudget().sinr(-1.0, 10.0)

    def test_invalid_rrb_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkBudget(rrb_bandwidth_hz=0.0)
