"""Unit tests for the ``dmra.metrics/1`` domain-metrics layer."""

import pytest

from repro.core.dmra import DMRAAllocator
from repro.econ.pricing import PaperPricing
from repro.errors import ConfigurationError
from repro.obs import (
    METRICS_SCHEMA,
    MetricFamily,
    MetricSample,
    MetricsDocument,
    Recorder,
    metrics_from_online,
    metrics_from_outcome,
    metrics_from_trace,
    metrics_json,
    parse_metrics,
    prometheus_exposition,
    read_metrics,
    telemetry_session,
    trace_from_recorder,
    write_metrics,
)
from repro.sim.config import ScenarioConfig
from repro.sim.runner import run_allocation
from repro.sim.scenario import build_scenario

CONFIG = ScenarioConfig.paper()


def tiny_document() -> MetricsDocument:
    """A small hand-built document exercising labels and scalars."""
    return MetricsDocument(families=(
        MetricFamily(
            name="dmra_sp_profit", kind="gauge", help="Per-SP profit",
            samples=(
                MetricSample.of(12.5, sp=1),
                MetricSample.of(7.0, sp=2),
            ),
        ),
        MetricFamily(
            name="dmra_match_rounds", kind="gauge", help="Rounds",
            samples=(MetricSample.of(9),),
        ),
    ))


class TestModel:
    def test_sample_of_sorts_and_stringifies_labels(self):
        sample = MetricSample.of(1.0, zeta=3, alpha="x")
        assert sample.labels == (("alpha", "x"), ("zeta", "3"))
        assert sample.labels_dict == {"alpha": "x", "zeta": "3"}

    def test_family_rejects_bad_name(self):
        with pytest.raises(ConfigurationError):
            MetricFamily(name="bad name", kind="gauge", help="", samples=())

    def test_family_rejects_bad_kind(self):
        with pytest.raises(ConfigurationError):
            MetricFamily(
                name="ok_name", kind="summary", help="", samples=()
            )

    def test_family_sample_lookup(self):
        doc = tiny_document()
        assert doc.family("dmra_sp_profit").sample(sp=1) == 12.5
        with pytest.raises(ConfigurationError):
            doc.family("dmra_sp_profit").sample(sp=99)

    def test_document_lookup(self):
        doc = tiny_document()
        assert doc.has_family("dmra_match_rounds")
        assert not doc.has_family("absent")
        assert set(doc.family_names()) == {
            "dmra_sp_profit", "dmra_match_rounds",
        }
        with pytest.raises(ConfigurationError):
            doc.family("absent")


class TestJsonRoundTrip:
    def test_round_trip_is_byte_exact(self):
        text = metrics_json(tiny_document())
        assert metrics_json(parse_metrics(text)) == text

    def test_round_trip_preserves_values_and_labels(self):
        doc = parse_metrics(metrics_json(tiny_document()))
        assert doc.family("dmra_sp_profit").sample(sp=2) == 7.0
        assert doc.family("dmra_match_rounds").sample() == 9.0

    def test_schema_field_present(self):
        import json

        payload = json.loads(metrics_json(tiny_document()))
        assert payload["schema"] == METRICS_SCHEMA

    def test_write_read_file(self, tmp_path):
        path = write_metrics(tmp_path / "m.json", tiny_document())
        doc = read_metrics(path)
        assert doc.family("dmra_sp_profit").sample(sp=1) == 12.5

    def test_malformed_json_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_metrics("{not json")

    def test_non_object_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_metrics("[1, 2]")

    def test_unknown_schema_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_metrics('{"schema": "dmra.metrics/999", "families": []}')

    def test_malformed_family_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_metrics(
                '{"schema": "dmra.metrics/1", '
                '"families": [{"name": "x"}]}'
            )

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_metrics(tmp_path / "absent.json")


class TestPrometheusExposition:
    def test_renders_help_type_and_samples(self):
        text = prometheus_exposition(tiny_document())
        assert "# HELP dmra_sp_profit Per-SP profit" in text
        assert "# TYPE dmra_sp_profit gauge" in text
        assert 'dmra_sp_profit{sp="1"} 12.5' in text
        assert "dmra_match_rounds 9" in text  # int-valued collapses

    def test_label_values_escaped(self):
        doc = MetricsDocument(families=(
            MetricFamily(
                name="f", kind="gauge", help="",
                samples=(MetricSample.of(1.0, note='a"b\\c'),),
            ),
        ))
        assert 'note="a\\"b\\\\c"' in prometheus_exposition(doc)

    def test_empty_document(self):
        assert prometheus_exposition(MetricsDocument(families=())) == ""


class TestFromOutcome:
    @pytest.fixture(scope="class")
    def doc(self):
        scenario = build_scenario(CONFIG, 60, seed=1)
        outcome = run_allocation(
            scenario, DMRAAllocator(pricing=PaperPricing())
        )
        return metrics_from_outcome(
            scenario.network, outcome.assignment, scenario.pricing,
            wall_time_s=outcome.wall_time_s,
        ), scenario, outcome

    def test_profit_families_agree_with_metrics(self, doc):
        document, _scenario, outcome = doc
        total = document.family("dmra_total_profit").sample()
        assert total == pytest.approx(outcome.metrics.total_profit)
        per_sp = document.family("dmra_sp_profit")
        assert sum(s.value for s in per_sp.samples) == pytest.approx(total)

    def test_population_split_conserved(self, doc):
        document, scenario, _outcome = doc
        edge = document.family("dmra_edge_served").sample()
        cloud = document.family("dmra_cloud_forwarded").sample()
        assert edge + cloud == scenario.network.ue_count

    def test_per_bs_utilization_in_unit_range(self, doc):
        document, scenario, _outcome = doc
        for family_name in (
            "dmra_bs_cru_utilization", "dmra_bs_rrb_utilization",
        ):
            family = document.family(family_name)
            assert len(family.samples) == scenario.network.bs_count
            assert all(0.0 <= s.value <= 1.0 for s in family.samples)

    def test_wall_time_emitted_as_timing_family(self, doc):
        document, _scenario, outcome = doc
        wall = document.family("dmra_wall_seconds").sample()
        assert wall == pytest.approx(outcome.wall_time_s)


class TestFromOnline:
    def test_totals_and_occupancy(self):
        from repro.dynamics import OnlineConfig, run_online

        outcome = run_online(
            CONFIG, OnlineConfig(horizon_s=120.0), seed=2
        )
        document = metrics_from_online(outcome)
        arrivals = document.family("dmra_online_arrivals_total").sample()
        assert arrivals == outcome.arrivals
        edge = document.family("dmra_online_admitted_edge_total").sample()
        cloud = document.family("dmra_online_admitted_cloud_total").sample()
        assert edge + cloud == arrivals
        per_sp = document.family("dmra_online_sp_profit")
        assert sum(s.value for s in per_sp.samples) == pytest.approx(
            sum(outcome.profit_by_sp.values())
        )
        occupancy = document.family("dmra_online_edge_active")
        assert occupancy.sample(stat="peak") >= occupancy.sample(stat="mean")


class TestFromTrace:
    def recorded_trace(self):
        recorder = Recorder(meta={"command": "test"})
        with telemetry_session(recorder):
            tel = recorder
            tel.count("match.accepted", 5)
            tel.count("online.sp_profit.1", 10.0)
            tel.count("online.sp_profit.2", 4.0)
            tel.gauge("match.rounds", 7)
            with tel.span("match") as match_span:
                match_span.set(rounds=7)
                with tel.span("match.round", round=1) as round_span:
                    round_span.set(proposals=40, accepted=30, evictions=2)
                with tel.span("match.round", round=2) as round_span:
                    round_span.set(proposals=8, accepted=6, evictions=0)
        return trace_from_recorder(recorder)

    def test_counters_become_total_families(self):
        document = metrics_from_trace(self.recorded_trace())
        assert document.family("dmra_match_accepted_total").sample() == 5

    def test_entity_suffixed_counters_fold_into_labels(self):
        document = metrics_from_trace(self.recorded_trace())
        family = document.family("dmra_online_sp_profit_total")
        assert family.sample(sp=1) == 10.0
        assert family.sample(sp=2) == 4.0

    def test_gauges_carry_stat_labels(self):
        document = metrics_from_trace(self.recorded_trace())
        family = document.family("dmra_match_rounds")
        assert family.sample(stat="last") == 7

    def test_round_spans_aggregate_by_round(self):
        document = metrics_from_trace(self.recorded_trace())
        proposals = document.family("dmra_match_round_proposals")
        assert proposals.sample(round=1) == 40
        assert proposals.sample(round=2) == 8
        convergence = document.family("dmra_match_convergence_rounds")
        assert convergence.sample(stat="max") == 7
        assert convergence.sample(stat="runs") == 1

    def test_manifest_defaults_from_trace_meta(self):
        from repro.obs import build_manifest

        manifest = build_manifest(
            config=CONFIG, seeds=[1], command="test",
            clock=lambda: 0.0, host=lambda: {},
        )
        recorder = Recorder(meta={"manifest": manifest})
        recorder.count("x", 1)
        document = metrics_from_trace(trace_from_recorder(recorder))
        assert document.manifest == manifest
