"""Unit tests for the spatial partitioner and the streaming builder."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.model.geometry import Point, Rectangle
from repro.scale import (
    build_scenario_frame,
    halo_bs_indices,
    partition_network,
    plan_tiles,
)
from repro.scale.partition import assign_shards
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario


class TestPlanTiles:
    def test_square_count_gives_square_grid(self):
        nx, ny, bounds = plan_tiles(Rectangle.square(1200.0), 4)
        assert (nx, ny) == (2, 2)
        assert len(bounds) == 4

    def test_prime_count_degenerates_to_strips(self):
        nx, ny, _ = plan_tiles(Rectangle.square(1200.0), 5)
        assert sorted((nx, ny)) == [1, 5]

    def test_larger_factor_follows_longer_side(self):
        wide = Rectangle(0.0, 0.0, 2000.0, 500.0)
        nx, ny, _ = plan_tiles(wide, 6)
        assert nx >= ny
        tall = Rectangle(0.0, 0.0, 500.0, 2000.0)
        nx, ny, _ = plan_tiles(tall, 6)
        assert ny >= nx

    def test_tiles_exactly_cover_the_region(self):
        region = Rectangle(10.0, -5.0, 1210.0, 595.0)
        _, _, bounds = plan_tiles(region, 6)
        assert sum(b.area for b in bounds) == pytest.approx(region.area)
        assert min(b.x_min for b in bounds) == region.x_min
        assert max(b.x_max for b in bounds) == pytest.approx(region.x_max)

    def test_invalid_count_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_tiles(Rectangle.square(100.0), 0)


class TestAssignShards:
    def test_every_point_gets_exactly_one_shard(self):
        region = Rectangle.square(1000.0)
        rng = np.random.default_rng(0)
        xy = rng.uniform(0.0, 1000.0, size=(500, 2))
        owners = assign_shards(xy, region, 3, 2)
        assert owners.shape == (500,)
        assert owners.min() >= 0 and owners.max() < 6

    def test_far_edge_points_clip_into_last_tile(self):
        region = Rectangle.square(1000.0)
        xy = np.array([[1000.0, 1000.0], [0.0, 0.0], [1500.0, -3.0]])
        owners = assign_shards(xy, region, 2, 2)
        assert owners.tolist() == [3, 0, 1]


class TestHaloBsIndices:
    def test_halo_is_point_to_rectangle_distance(self):
        bounds = Rectangle(0.0, 0.0, 100.0, 100.0)

        class FakeBS:
            def __init__(self, x, y):
                self.position = Point(x, y)

        stations = [
            FakeBS(50.0, 50.0),    # inside
            FakeBS(149.0, 50.0),   # 49 m east of the edge
            FakeBS(151.0, 50.0),   # 51 m east of the edge
            FakeBS(140.0, 140.0),  # corner distance ~56.6 m
        ]
        halo = halo_bs_indices(stations, bounds, coverage_radius_m=50.0)
        assert halo.tolist() == [0, 1]

    def test_empty_and_invalid(self):
        bounds = Rectangle.square(10.0)
        assert halo_bs_indices([], bounds, 50.0).tolist() == []
        with pytest.raises(ConfigurationError):
            halo_bs_indices([], bounds, 0.0)


class TestPartitionNetwork:
    @pytest.fixture(scope="class")
    def network(self):
        return build_scenario(
            ScenarioConfig.paper(), ue_count=150, seed=5
        ).network

    def test_ues_partitioned_exactly_once(self, network):
        plan = partition_network(network, 4)
        seen = [ue for tile in plan.tiles for ue in tile.ue_ids]
        assert sorted(seen) == sorted(
            ue.ue_id for ue in network.user_equipments
        )
        assert len(seen) == len(set(seen))

    def test_halo_contains_every_covering_bs(self, network):
        plan = partition_network(network, 4)
        for tile in plan.tiles:
            halo = set(tile.bs_ids)
            for ue_id in tile.ue_ids:
                covering = set(network.covering_base_stations(ue_id))
                assert covering <= halo

    def test_single_shard_owns_everything(self, network):
        plan = partition_network(network, 1)
        (tile,) = plan.tiles
        assert len(tile.ue_ids) == network.ue_count
        assert len(tile.bs_ids) == network.bs_count


class TestScenarioFrame:
    def test_chunked_ues_bit_identical_to_monolithic(self):
        config = ScenarioConfig.paper()
        scenario = build_scenario(config, ue_count=123, seed=9)
        frame = build_scenario_frame(config, ue_count=123, seed=9)
        assert frame.providers == scenario.network.providers
        assert frame.base_stations == scenario.network.base_stations
        assert frame.services == scenario.network.services
        streamed = [
            ue
            for chunk in frame.iter_ue_chunks(chunk_size=40)
            for ue in chunk
        ]
        assert tuple(streamed) == scenario.network.user_equipments

    def test_frame_is_one_shot(self):
        frame = build_scenario_frame(
            ScenarioConfig.paper(), ue_count=10, seed=0
        )
        list(frame.iter_ue_chunks(chunk_size=4))
        with pytest.raises(ConfigurationError):
            next(iter(frame.iter_ue_chunks(chunk_size=4)))

    def test_invalid_chunk_size_rejected(self):
        frame = build_scenario_frame(
            ScenarioConfig.paper(), ue_count=10, seed=0
        )
        with pytest.raises(ConfigurationError):
            next(iter(frame.iter_ue_chunks(chunk_size=0)))
