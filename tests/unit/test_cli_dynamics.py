"""Unit tests for the mobility / failures / map CLI subcommands."""

import pytest

from repro.cli import main


class TestMobilityCli:
    def test_mobility_table(self, capsys):
        assert (
            main(["mobility", "--ues", "80", "--epochs", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert "handover rate" in out
        assert "epoch" in out

    def test_no_sticky_flag(self, capsys):
        assert (
            main(
                [
                    "mobility", "--ues", "80", "--epochs", "2",
                    "--no-sticky",
                ]
            )
            == 0
        )
        assert "re-optimize" in capsys.readouterr().out


class TestFailuresCli:
    def test_failure_report(self, capsys):
        assert main(["failures", "--ues", "200", "--bs", "0", "1"]) == 0
        out = capsys.readouterr().out
        assert "failed BSs:        [0, 1]" in out
        assert "recovered at edge:" in out
        assert "profit before:" in out

    def test_unknown_bs_errors(self):
        from repro.errors import UnknownEntityError

        with pytest.raises(UnknownEntityError):
            main(["failures", "--ues", "100", "--bs", "999"])

    def test_bs_argument_required(self):
        with pytest.raises(SystemExit):
            main(["failures", "--ues", "100"])


class TestMapCli:
    def test_writes_svg(self, tmp_path, capsys):
        target = tmp_path / "net.svg"
        assert (
            main(
                [
                    "map", "--ues", "60", "--out", str(target),
                    "--coverage", "--allocator", "nonco",
                ]
            )
            == 0
        )
        assert target.exists()
        content = target.read_text()
        assert content.startswith("<svg")
        assert "nonco" in content  # title mentions the allocator
        assert "wrote" in capsys.readouterr().out
