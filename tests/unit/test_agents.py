"""Unit tests for the message-passing agent layer."""

import math

import pytest

from conftest import make_tiny_network
from repro.compute.cru import LedgerPool
from repro.core.agents import (
    BroadcastPipeline,
    BSAgent,
    DecentralizedDMRAAllocator,
    SPAgent,
    UEAgent,
    _CandidateInfo,
    build_ue_agents,
)
from repro.core.matching import MatchingContext
from repro.core.preferences import dmra_price_term, dmra_slack_term
from repro.core.messages import (
    AssociationGrant,
    CloudFallbackNotice,
    ResourceBroadcast,
    ServiceRequest,
)
from repro.econ.pricing import PaperPricing
from repro.errors import AllocationError, ConfigurationError
from repro.model.entities import BaseStation, UserEquipment
from repro.model.geometry import Point
from repro.radio.channel import build_radio_map
from repro.radio.sinr import LinkBudget

PRICING = PaperPricing(base_price=1.0, cross_sp_markup=2.0, distance_weight=0.01)


def make_ue(ue_id=0, sp_id=0, crus=4):
    return UserEquipment(
        ue_id=ue_id,
        sp_id=sp_id,
        position=Point(100, 0),
        service_id=0,
        cru_demand=crus,
        rate_demand_bps=2e6,
    )


def make_bs_agent(bs_id=0, sp_id=0, crus=None, rrbs=10):
    return BSAgent(
        BaseStation(
            bs_id=bs_id,
            sp_id=sp_id,
            position=Point(0, 0),
            cru_capacity=crus if crus is not None else {0: 20, 1: 20},
            rrb_capacity=rrbs,
        )
    )


def request(ue_id=0, sp_id=0, bs_id=0, service_id=0, crus=4, rrbs=2, f_u=3):
    return ServiceRequest(
        ue_id=ue_id,
        sp_id=sp_id,
        target_bs_id=bs_id,
        service_id=service_id,
        cru_demand=crus,
        rrbs_required=rrbs,
        coverage_count=f_u,
    )


def broadcast(bs_id=0, crus=None, rrbs=10):
    return ResourceBroadcast(
        bs_id=bs_id,
        remaining_crus=crus if crus is not None else {0: 20, 1: 20},
        remaining_rrbs=rrbs,
    )


class TestUEAgent:
    def two_bs_agent(self, rho=0.0):
        return UEAgent(
            make_ue(),
            candidates=[
                _CandidateInfo(bs_id=0, price_per_cru=2.0, rrbs_required=1),
                _CandidateInfo(bs_id=1, price_per_cru=5.0, rrbs_required=2),
            ],
            rho=rho,
        )

    def test_proposes_cheapest_fitting_bs(self):
        agent = self.two_bs_agent()
        agent.observe(broadcast(0))
        agent.observe(broadcast(1))
        message = agent.propose()
        assert isinstance(message, ServiceRequest)
        assert message.target_bs_id == 0
        assert message.coverage_count == 2

    def test_skips_full_bs_and_prunes_it(self):
        agent = self.two_bs_agent()
        agent.observe(broadcast(0, crus={0: 2, 1: 20}))  # 2 < demand of 4
        agent.observe(broadcast(1))
        message = agent.propose()
        assert message.target_bs_id == 1
        assert agent.candidate_bs_ids == (1,)

    def test_cloud_fallback_when_all_full(self):
        agent = self.two_bs_agent()
        agent.observe(broadcast(0, rrbs=0))
        agent.observe(broadcast(1, crus={0: 0, 1: 0}))
        message = agent.propose()
        assert isinstance(message, CloudFallbackNotice)
        assert agent.gave_up

    def test_silent_once_associated(self):
        agent = self.two_bs_agent()
        agent.observe(broadcast(0))
        agent.receive_grant(
            AssociationGrant(bs_id=0, ue_id=0, service_id=0, crus=4, rrbs=1)
        )
        assert agent.propose() is None

    def test_misaddressed_grant_rejected(self):
        agent = self.two_bs_agent()
        with pytest.raises(AllocationError):
            agent.receive_grant(
                AssociationGrant(bs_id=0, ue_id=9, service_id=0, crus=4, rrbs=1)
            )

    def test_rho_prefers_emptier_bs(self):
        """With a huge rho, the emptier (but pricier) BS wins."""
        agent = self.two_bs_agent(rho=1000.0)
        agent.observe(broadcast(0, crus={0: 4, 1: 0}, rrbs=1))  # slack 5
        agent.observe(broadcast(1))  # slack 30
        message = agent.propose()
        assert message.target_bs_id == 1

    def test_coverage_count_tracks_broadcasts(self):
        agent = self.two_bs_agent()
        agent.observe(broadcast(0))
        agent.observe(broadcast(1))
        assert agent.coverage_count() == 2
        agent.observe(broadcast(1, rrbs=1))  # needs 2 RRBs there
        assert agent.coverage_count() == 1


class TestBSAgent:
    def test_accepts_one_per_service(self):
        agent = make_bs_agent()
        agent.deliver(request(ue_id=0, service_id=0))
        agent.deliver(request(ue_id=1, service_id=0))
        agent.deliver(request(ue_id=2, service_id=1))
        grants = agent.process_round()
        assert len(grants) == 2
        assert {g.service_id for g in grants} == {0, 1}

    def test_same_sp_request_wins(self):
        agent = make_bs_agent(sp_id=0)
        agent.deliver(request(ue_id=0, sp_id=1, f_u=1))
        agent.deliver(request(ue_id=1, sp_id=0, f_u=5))
        (grant,) = agent.process_round()
        assert grant.ue_id == 1  # own subscriber despite larger f_u

    def test_smaller_f_u_wins_within_same_sp(self):
        agent = make_bs_agent(sp_id=0)
        agent.deliver(request(ue_id=0, sp_id=0, f_u=5))
        agent.deliver(request(ue_id=1, sp_id=0, f_u=2))
        (grant,) = agent.process_round()
        assert grant.ue_id == 1

    def test_footprint_breaks_remaining_ties(self):
        agent = make_bs_agent(sp_id=0)
        agent.deliver(request(ue_id=0, sp_id=0, f_u=2, crus=5, rrbs=3))
        agent.deliver(request(ue_id=1, sp_id=0, f_u=2, crus=4, rrbs=2))
        (grant,) = agent.process_round()
        assert grant.ue_id == 1

    def test_rrb_budget_eviction(self):
        agent = make_bs_agent(rrbs=3)
        agent.deliver(request(ue_id=0, service_id=0, rrbs=2, f_u=1))
        agent.deliver(request(ue_id=1, service_id=1, rrbs=2, f_u=2))
        grants = agent.process_round()
        # Combined 4 > 3: the less preferred (larger f_u) pick is evicted.
        assert [g.ue_id for g in grants] == [0]

    def test_mailbox_cleared_between_rounds(self):
        agent = make_bs_agent()
        agent.deliver(request(ue_id=0))
        assert len(agent.process_round()) == 1
        assert agent.process_round() == []

    def test_misrouted_request_rejected(self):
        agent = make_bs_agent(bs_id=0)
        with pytest.raises(AllocationError):
            agent.deliver(request(bs_id=7))

    def test_broadcast_reflects_ledger(self):
        agent = make_bs_agent()
        agent.deliver(request(ue_id=0, crus=4, rrbs=2))
        agent.process_round()
        advertised = agent.broadcast()
        assert advertised.remaining_crus[0] == 16
        assert advertised.remaining_rrbs == 8


class TestSPAgent:
    def test_relays_and_counts(self):
        sp = SPAgent(sp_id=0)
        req = request(sp_id=0)
        assert sp.relay_request(req) is req
        grant = AssociationGrant(bs_id=0, ue_id=0, service_id=0, crus=4, rrbs=1)
        assert sp.relay_grant(grant) is grant
        sp.forward_to_cloud(CloudFallbackNotice(ue_id=5, sp_id=0))
        assert sp.requests_relayed == 1
        assert sp.grants_relayed == 1
        assert sp.cloud_forwards == 1
        assert sp.cloud_ue_ids == {5}

    def test_rejects_foreign_subscribers(self):
        sp = SPAgent(sp_id=0)
        with pytest.raises(AllocationError):
            sp.relay_request(request(sp_id=1))
        with pytest.raises(AllocationError):
            sp.forward_to_cloud(CloudFallbackNotice(ue_id=1, sp_id=1))


class TestDecentralizedAllocator:
    def test_valid_on_tiny_network(self):
        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=0, position=Point(100, 0)),
                dict(ue_id=1, position=Point(350, 0), service_id=1),
            ]
        )
        radio_map = build_radio_map(network, LinkBudget())
        allocator = DecentralizedDMRAAllocator(pricing=PRICING)
        assignment = allocator.allocate(network, radio_map)
        assignment.validate(network, radio_map)
        assert assignment.edge_served_count == 2

    def test_sp_relay_statistics_populated(self):
        network = make_tiny_network(
            ue_specs=[dict(ue_id=0, position=Point(100, 0))]
        )
        radio_map = build_radio_map(network, LinkBudget())
        allocator = DecentralizedDMRAAllocator(pricing=PRICING)
        allocator.allocate(network, radio_map)
        sp0 = allocator.last_sp_agents[0]
        assert sp0.requests_relayed == 1
        assert sp0.grants_relayed == 1

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            DecentralizedDMRAAllocator(rho=-1.0)
        with pytest.raises(ConfigurationError):
            DecentralizedDMRAAllocator(max_rounds=0)


class TestBroadcastPipeline:
    def stamped(self, seq):
        return broadcast(0, crus={0: 20 - seq, 1: 20}, rrbs=10)

    def test_delay_zero_is_passthrough(self):
        pipeline = BroadcastPipeline(self.stamped(0), delay=0)
        for seq in range(1, 5):
            sent = self.stamped(seq)
            assert pipeline.push(sent) is sent

    @pytest.mark.parametrize("delay", [1, 2, 5])
    def test_head_is_the_broadcast_sent_delay_rounds_ago(self, delay):
        """Regression for the deque rewrite: pushing round r's broadcast
        must deliver the one sent in round ``r - delay`` — with the
        initial broadcast standing in for pre-history rounds."""
        initial = self.stamped(0)
        pipeline = BroadcastPipeline(initial, delay=delay)
        for seq in range(1, 12):
            delivered = pipeline.push(self.stamped(seq))
            expected = self.stamped(max(0, seq - delay))
            assert delivered.remaining_crus == expected.remaining_crus
            assert pipeline.head is delivered
        assert pipeline.delay == delay

    def test_prehistory_is_the_initial_broadcast(self):
        initial = self.stamped(0)
        pipeline = BroadcastPipeline(initial, delay=3)
        assert pipeline.push(self.stamped(1)) is initial
        assert pipeline.push(self.stamped(2)) is initial

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            BroadcastPipeline(self.stamped(0), delay=-1)


class TestSlackParity:
    """``UEAgent._slack``/``_score`` must equal the direct engine's
    Eq. 17 terms (:func:`dmra_price_term` + :func:`dmra_slack_term`)
    when the agent's broadcast view matches the engine's ledger."""

    def context_and_agent(self, rho, ue_specs=None):
        network = make_tiny_network(
            ue_specs=ue_specs or [dict(ue_id=0, position=Point(100, 0))]
        )
        radio_map = build_radio_map(network, LinkBudget())
        ctx = MatchingContext(
            network=network,
            radio_map=radio_map,
            ledgers=LedgerPool(network.base_stations),
        )
        agent = build_ue_agents(network, radio_map, PRICING, rho)[0]
        return network, ctx, agent

    def sync_broadcasts(self, network, ctx, agent):
        """Deliver broadcasts reflecting the ledger state, as the BS
        agents would at the start of a round."""
        for bs in network.base_stations:
            ledger = ctx.ledgers.ledger(bs.bs_id)
            agent.observe(
                ResourceBroadcast(
                    bs_id=bs.bs_id,
                    remaining_crus={
                        s: ledger.remaining_crus(s) for s in bs.cru_capacity
                    },
                    remaining_rrbs=ledger.remaining_rrbs,
                )
            )

    @pytest.mark.parametrize("rho", [0.0, 10.0, 500.0])
    def test_score_matches_engine_terms(self, rho):
        network, ctx, agent = self.context_and_agent(rho)
        # Consume some resources so the slack term is non-trivial.
        ctx.ledgers.ledger(0).grant(ue_id=9, service_id=0, crus=6, rrbs=3)
        self.sync_broadcasts(network, ctx, agent)
        ue = agent.ue
        for bs_id in agent.candidate_bs_ids:
            expected = dmra_price_term(
                ue, bs_id, ctx, PRICING
            ) + dmra_slack_term(ue.service_id, bs_id, ctx, rho)
            info = agent._candidates[bs_id]
            assert agent._score(info) == pytest.approx(expected)
            ledger = ctx.ledgers.ledger(bs_id)
            assert agent._slack(bs_id) == (
                ledger.remaining_crus(ue.service_id) + ledger.remaining_rrbs
            )

    @pytest.mark.parametrize("rho", [0.0, 10.0])
    def test_zero_slack_limit_matches_engine(self, rho):
        """slack == 0: +inf for rho > 0, bare price for rho = 0 — the
        documented Eq. 17 limit, in both implementations."""
        network, ctx, agent = self.context_and_agent(rho)
        ledger = ctx.ledgers.ledger(0)
        ledger.grant(ue_id=8, service_id=0, crus=20, rrbs=5)
        ledger.grant(ue_id=9, service_id=1, crus=20, rrbs=5)
        self.sync_broadcasts(network, ctx, agent)
        expected = dmra_price_term(agent.ue, 0, ctx, PRICING) + dmra_slack_term(
            agent.ue.service_id, 0, ctx, rho
        )
        got = agent._score(agent._candidates[0])
        assert agent._slack(0) == 0
        if rho > 0:
            assert got == math.inf and expected == math.inf
        else:
            assert got == pytest.approx(expected)

    def test_no_broadcast_branch_scores_price_only(self):
        _network, _ctx, agent = self.context_and_agent(rho=50.0)
        for bs_id in agent.candidate_bs_ids:
            assert agent._slack(bs_id) == -1
            info = agent._candidates[bs_id]
            assert agent._score(info) == info.price_per_cru

    @pytest.mark.parametrize("delay", [1, 2])
    def test_delayed_broadcast_scores_against_the_old_ledger(self, delay):
        """Under ``broadcast_delay_rounds > 0`` the agent's slack tracks
        the ledger state ``delay`` rounds ago, not the current one —
        and the delayed allocator still yields a valid assignment."""
        network, ctx, agent = self.context_and_agent(rho=10.0)
        pipeline = BroadcastPipeline(
            ResourceBroadcast(
                bs_id=0, remaining_crus={0: 20, 1: 20}, remaining_rrbs=10
            ),
            delay=delay,
        )
        ledger = ctx.ledgers.ledger(0)
        snapshots = []
        for _round in range(delay + 2):
            snapshots.append(
                ledger.remaining_crus(0) + ledger.remaining_rrbs
            )
            agent.observe(
                pipeline.push(
                    ResourceBroadcast(
                        bs_id=0,
                        remaining_crus={
                            s: ledger.remaining_crus(s) for s in (0, 1)
                        },
                        remaining_rrbs=ledger.remaining_rrbs,
                    )
                )
            )
            ledger.grant(
                ue_id=100 + _round, service_id=0, crus=2, rrbs=1
            )
        # After r pushes the delivered head is the snapshot from
        # max(0, r - 1 - delay)... the last push delivered snapshot
        # index (delay + 1) - delay = 1.
        assert agent._slack(0) == snapshots[1]

        network2 = make_tiny_network(
            ue_specs=[
                dict(ue_id=i, position=Point(100 + 20 * i, 0))
                for i in range(6)
            ]
        )
        radio_map2 = build_radio_map(network2, LinkBudget())
        allocator = DecentralizedDMRAAllocator(
            pricing=PRICING, broadcast_delay_rounds=delay
        )
        assignment = allocator.allocate(network2, radio_map2)
        assignment.validate(network2, radio_map2)


class TestFreshnessAndEpochs:
    def stamped(self, seq=0, epoch=0, rrbs=10):
        return ResourceBroadcast(
            bs_id=0,
            remaining_crus={0: 20, 1: 20},
            remaining_rrbs=rrbs,
            seq=seq,
            epoch=epoch,
        )

    def agent(self):
        return UEAgent(
            make_ue(),
            candidates=[_CandidateInfo(bs_id=0, price_per_cru=2.0, rrbs_required=1)],
            rho=0.0,
        )

    def test_stale_seq_discarded(self):
        agent = self.agent()
        assert agent.observe(self.stamped(seq=5, rrbs=3))
        assert not agent.observe(self.stamped(seq=4, rrbs=10))
        # The stale broadcast must not overwrite the newer view.
        assert agent._broadcasts[0].remaining_rrbs == 3

    def test_newer_epoch_outranks_larger_seq(self):
        agent = self.agent()
        assert agent.observe(self.stamped(seq=50, epoch=0))
        assert agent.observe(self.stamped(seq=1, epoch=1, rrbs=4))
        assert agent._broadcasts[0].remaining_rrbs == 4

    def test_epoch_bump_disassociates_from_serving_bs(self):
        agent = self.agent()
        agent.observe(self.stamped(seq=1))
        agent.receive_grant(
            AssociationGrant(bs_id=0, ue_id=0, service_id=0, crus=4, rrbs=1)
        )
        assert agent.associated_bs == 0
        # Same epoch: association stands.
        agent.observe(self.stamped(seq=2))
        assert agent.associated_bs == 0
        # Epoch bump from the serving BS: the reservation is gone.
        agent.observe(self.stamped(seq=3, epoch=1))
        assert agent.associated_bs is None
        assert agent.propose() is not None  # re-enters the matching

    def test_stale_epoch_grant_rejected(self):
        agent = self.agent()
        agent.observe(self.stamped(seq=1, epoch=2))
        accepted = agent.receive_grant(
            AssociationGrant(
                bs_id=0, ue_id=0, service_id=0, crus=4, rrbs=1, epoch=1
            )
        )
        assert not accepted
        assert agent.associated_bs is None

    def test_bs_reset_bumps_epoch_and_wipes_ledger(self):
        agent = make_bs_agent()
        agent.deliver(request(ue_id=3))
        agent.process_round()
        assert agent.grant_for(3) is not None
        first = agent.broadcast()
        agent.reset()
        assert agent.epoch == 1
        assert agent.grant_for(3) is None
        second = agent.broadcast()
        # Full capacity again, new epoch, and seq keeps counting so
        # (epoch, seq) stays totally ordered.
        assert second.remaining_crus[0] == 20
        assert second.epoch == 1
        assert second.seq == first.seq + 1

    def test_regrant_path_reissues_booked_grant(self):
        agent = make_bs_agent()
        agent.deliver(request(ue_id=3, crus=4, rrbs=2))
        (granted,) = agent.process_round()
        # A re-proposal from an already-served UE is not double-booked.
        agent.deliver(request(ue_id=3, crus=4, rrbs=2))
        assert agent.process_round() == []
        reissued = agent.grant_for(3)
        assert reissued.crus == granted.crus
        assert reissued.rrbs == granted.rrbs
        assert agent.ledger.remaining_crus(0) == 16

    def test_same_resources_ignores_seq(self):
        a = self.stamped(seq=1)
        assert self.stamped(seq=9).same_resources(a)
        assert not self.stamped(seq=2, rrbs=3).same_resources(a)
        assert not self.stamped(seq=2, epoch=1).same_resources(a)
        assert not a.same_resources(None)


class TestReleaseProtocol:
    """The explicit-release handshake that keeps BS ledgers and UE
    associations consistent under lossy transports."""

    def two_bs_agent(self):
        return UEAgent(
            make_ue(),
            candidates=[
                _CandidateInfo(bs_id=0, price_per_cru=2.0, rrbs_required=1),
                _CandidateInfo(bs_id=1, price_per_cru=5.0, rrbs_required=2),
            ],
            rho=0.0,
        )

    def grant(self, bs_id, epoch=0):
        return AssociationGrant(
            bs_id=bs_id, ue_id=0, service_id=0, crus=4, rrbs=1, epoch=epoch
        )

    def test_duplicate_grant_declined_with_release(self):
        agent = self.two_bs_agent()
        assert agent.receive_grant(self.grant(0))
        # A second BS also answered (our re-sent proposal): keep the
        # first association, release the second booking.
        assert not agent.receive_grant(self.grant(1))
        assert agent.associated_bs == 0
        (notice,) = agent.drain_releases()
        assert (notice.ue_id, notice.bs_id, notice.epoch) == (0, 1, 0)
        assert agent.drain_releases() == []  # drained on read

    def test_grant_from_released_bs_requeues_release(self):
        agent2 = self.two_bs_agent()
        assert agent2.receive_grant(self.grant(0))
        assert not agent2.receive_grant(self.grant(1))
        agent2.drain_releases()
        # The declined BS re-sends the same grant (its release was
        # lost): the UE re-queues the release instead of accepting.
        assert not agent2.receive_grant(self.grant(1))
        (notice,) = agent2.drain_releases()
        assert notice.bs_id == 1

    def test_switching_targets_releases_the_abandoned_proposal(self):
        agent = self.two_bs_agent()
        agent.observe(broadcast(0))
        agent.observe(broadcast(1))
        first = agent.propose()
        assert first.target_bs_id == 0  # cheapest
        # BS 0 fills up before answering; the UE walks to BS 1 and must
        # release the possibly-granted proposal it abandons.
        agent.observe(ResourceBroadcast(
            bs_id=0, remaining_crus={0: 0, 1: 0}, remaining_rrbs=0, seq=1
        ))
        second = agent.propose()
        assert second.target_bs_id == 1
        (notice,) = agent.drain_releases()
        assert notice.bs_id == 0
        assert agent.still_released(0)

    def test_reproposal_rescinds_the_release(self):
        agent = self.two_bs_agent()
        assert agent.receive_grant(self.grant(0))
        assert not agent.receive_grant(self.grant(1))
        agent.drain_releases()
        assert agent.still_released(1)
        # BS 0 crashes (epoch bump) -> the UE re-enters the matching and
        # may legitimately re-propose to the BS it released earlier.
        agent.observe(ResourceBroadcast(
            bs_id=0, remaining_crus={0: 0, 1: 0}, remaining_rrbs=0, epoch=1
        ))
        agent.observe(broadcast(1))
        message = agent.propose()
        assert message.target_bs_id == 1
        # The release for BS 1 is rescinded: a transport must stop
        # re-sending it, or it would free the upcoming booking.
        assert not agent.still_released(1)

    def test_bs_honors_release_only_for_current_epoch_bookings(self):
        agent = make_bs_agent()
        agent.deliver(request(ue_id=0, crus=4, rrbs=2))
        (granted,) = agent.process_round()
        assert granted.ue_id == 0
        # Wrong epoch: the booking belongs to a newer ledger life.
        assert not agent.release(0, epoch=granted.epoch + 1)
        assert agent.ledger.remaining_crus(0) == 16
        # Unknown UE: nothing to free.
        assert not agent.release(99, epoch=granted.epoch)
        # Matching epoch and booked UE: the reservation is freed.
        assert agent.release(0, epoch=granted.epoch)
        assert agent.ledger.remaining_crus(0) == 20
        assert agent.broadcast().remaining_rrbs == 10

    def test_release_notice_round_trips_the_wire(self):
        from repro.core.messages import ReleaseNotice, from_wire, to_wire

        notice = ReleaseNotice(ue_id=3, sp_id=1, bs_id=7, epoch=2)
        payload = to_wire(notice)
        assert payload["k"] == "release"
        assert from_wire(payload) == notice
