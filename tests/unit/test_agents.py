"""Unit tests for the message-passing agent layer."""

import pytest

from conftest import make_tiny_network
from repro.core.agents import (
    BSAgent,
    DecentralizedDMRAAllocator,
    SPAgent,
    UEAgent,
    _CandidateInfo,
)
from repro.core.messages import (
    AssociationGrant,
    CloudFallbackNotice,
    ResourceBroadcast,
    ServiceRequest,
)
from repro.econ.pricing import PaperPricing
from repro.errors import AllocationError, ConfigurationError
from repro.model.entities import BaseStation, UserEquipment
from repro.model.geometry import Point
from repro.radio.channel import build_radio_map
from repro.radio.sinr import LinkBudget

PRICING = PaperPricing(base_price=1.0, cross_sp_markup=2.0, distance_weight=0.01)


def make_ue(ue_id=0, sp_id=0, crus=4):
    return UserEquipment(
        ue_id=ue_id,
        sp_id=sp_id,
        position=Point(100, 0),
        service_id=0,
        cru_demand=crus,
        rate_demand_bps=2e6,
    )


def make_bs_agent(bs_id=0, sp_id=0, crus=None, rrbs=10):
    return BSAgent(
        BaseStation(
            bs_id=bs_id,
            sp_id=sp_id,
            position=Point(0, 0),
            cru_capacity=crus if crus is not None else {0: 20, 1: 20},
            rrb_capacity=rrbs,
        )
    )


def request(ue_id=0, sp_id=0, bs_id=0, service_id=0, crus=4, rrbs=2, f_u=3):
    return ServiceRequest(
        ue_id=ue_id,
        sp_id=sp_id,
        target_bs_id=bs_id,
        service_id=service_id,
        cru_demand=crus,
        rrbs_required=rrbs,
        coverage_count=f_u,
    )


def broadcast(bs_id=0, crus=None, rrbs=10):
    return ResourceBroadcast(
        bs_id=bs_id,
        remaining_crus=crus if crus is not None else {0: 20, 1: 20},
        remaining_rrbs=rrbs,
    )


class TestUEAgent:
    def two_bs_agent(self, rho=0.0):
        return UEAgent(
            make_ue(),
            candidates=[
                _CandidateInfo(bs_id=0, price_per_cru=2.0, rrbs_required=1),
                _CandidateInfo(bs_id=1, price_per_cru=5.0, rrbs_required=2),
            ],
            rho=rho,
        )

    def test_proposes_cheapest_fitting_bs(self):
        agent = self.two_bs_agent()
        agent.observe(broadcast(0))
        agent.observe(broadcast(1))
        message = agent.propose()
        assert isinstance(message, ServiceRequest)
        assert message.target_bs_id == 0
        assert message.coverage_count == 2

    def test_skips_full_bs_and_prunes_it(self):
        agent = self.two_bs_agent()
        agent.observe(broadcast(0, crus={0: 2, 1: 20}))  # 2 < demand of 4
        agent.observe(broadcast(1))
        message = agent.propose()
        assert message.target_bs_id == 1
        assert agent.candidate_bs_ids == (1,)

    def test_cloud_fallback_when_all_full(self):
        agent = self.two_bs_agent()
        agent.observe(broadcast(0, rrbs=0))
        agent.observe(broadcast(1, crus={0: 0, 1: 0}))
        message = agent.propose()
        assert isinstance(message, CloudFallbackNotice)
        assert agent.gave_up

    def test_silent_once_associated(self):
        agent = self.two_bs_agent()
        agent.observe(broadcast(0))
        agent.receive_grant(
            AssociationGrant(bs_id=0, ue_id=0, service_id=0, crus=4, rrbs=1)
        )
        assert agent.propose() is None

    def test_misaddressed_grant_rejected(self):
        agent = self.two_bs_agent()
        with pytest.raises(AllocationError):
            agent.receive_grant(
                AssociationGrant(bs_id=0, ue_id=9, service_id=0, crus=4, rrbs=1)
            )

    def test_rho_prefers_emptier_bs(self):
        """With a huge rho, the emptier (but pricier) BS wins."""
        agent = self.two_bs_agent(rho=1000.0)
        agent.observe(broadcast(0, crus={0: 4, 1: 0}, rrbs=1))  # slack 5
        agent.observe(broadcast(1))  # slack 30
        message = agent.propose()
        assert message.target_bs_id == 1

    def test_coverage_count_tracks_broadcasts(self):
        agent = self.two_bs_agent()
        agent.observe(broadcast(0))
        agent.observe(broadcast(1))
        assert agent.coverage_count() == 2
        agent.observe(broadcast(1, rrbs=1))  # needs 2 RRBs there
        assert agent.coverage_count() == 1


class TestBSAgent:
    def test_accepts_one_per_service(self):
        agent = make_bs_agent()
        agent.deliver(request(ue_id=0, service_id=0))
        agent.deliver(request(ue_id=1, service_id=0))
        agent.deliver(request(ue_id=2, service_id=1))
        grants = agent.process_round()
        assert len(grants) == 2
        assert {g.service_id for g in grants} == {0, 1}

    def test_same_sp_request_wins(self):
        agent = make_bs_agent(sp_id=0)
        agent.deliver(request(ue_id=0, sp_id=1, f_u=1))
        agent.deliver(request(ue_id=1, sp_id=0, f_u=5))
        (grant,) = agent.process_round()
        assert grant.ue_id == 1  # own subscriber despite larger f_u

    def test_smaller_f_u_wins_within_same_sp(self):
        agent = make_bs_agent(sp_id=0)
        agent.deliver(request(ue_id=0, sp_id=0, f_u=5))
        agent.deliver(request(ue_id=1, sp_id=0, f_u=2))
        (grant,) = agent.process_round()
        assert grant.ue_id == 1

    def test_footprint_breaks_remaining_ties(self):
        agent = make_bs_agent(sp_id=0)
        agent.deliver(request(ue_id=0, sp_id=0, f_u=2, crus=5, rrbs=3))
        agent.deliver(request(ue_id=1, sp_id=0, f_u=2, crus=4, rrbs=2))
        (grant,) = agent.process_round()
        assert grant.ue_id == 1

    def test_rrb_budget_eviction(self):
        agent = make_bs_agent(rrbs=3)
        agent.deliver(request(ue_id=0, service_id=0, rrbs=2, f_u=1))
        agent.deliver(request(ue_id=1, service_id=1, rrbs=2, f_u=2))
        grants = agent.process_round()
        # Combined 4 > 3: the less preferred (larger f_u) pick is evicted.
        assert [g.ue_id for g in grants] == [0]

    def test_mailbox_cleared_between_rounds(self):
        agent = make_bs_agent()
        agent.deliver(request(ue_id=0))
        assert len(agent.process_round()) == 1
        assert agent.process_round() == []

    def test_misrouted_request_rejected(self):
        agent = make_bs_agent(bs_id=0)
        with pytest.raises(AllocationError):
            agent.deliver(request(bs_id=7))

    def test_broadcast_reflects_ledger(self):
        agent = make_bs_agent()
        agent.deliver(request(ue_id=0, crus=4, rrbs=2))
        agent.process_round()
        advertised = agent.broadcast()
        assert advertised.remaining_crus[0] == 16
        assert advertised.remaining_rrbs == 8


class TestSPAgent:
    def test_relays_and_counts(self):
        sp = SPAgent(sp_id=0)
        req = request(sp_id=0)
        assert sp.relay_request(req) is req
        grant = AssociationGrant(bs_id=0, ue_id=0, service_id=0, crus=4, rrbs=1)
        assert sp.relay_grant(grant) is grant
        sp.forward_to_cloud(CloudFallbackNotice(ue_id=5, sp_id=0))
        assert sp.requests_relayed == 1
        assert sp.grants_relayed == 1
        assert sp.cloud_forwards == 1
        assert sp.cloud_ue_ids == {5}

    def test_rejects_foreign_subscribers(self):
        sp = SPAgent(sp_id=0)
        with pytest.raises(AllocationError):
            sp.relay_request(request(sp_id=1))
        with pytest.raises(AllocationError):
            sp.forward_to_cloud(CloudFallbackNotice(ue_id=1, sp_id=1))


class TestDecentralizedAllocator:
    def test_valid_on_tiny_network(self):
        network = make_tiny_network(
            ue_specs=[
                dict(ue_id=0, position=Point(100, 0)),
                dict(ue_id=1, position=Point(350, 0), service_id=1),
            ]
        )
        radio_map = build_radio_map(network, LinkBudget())
        allocator = DecentralizedDMRAAllocator(pricing=PRICING)
        assignment = allocator.allocate(network, radio_map)
        assignment.validate(network, radio_map)
        assert assignment.edge_served_count == 2

    def test_sp_relay_statistics_populated(self):
        network = make_tiny_network(
            ue_specs=[dict(ue_id=0, position=Point(100, 0))]
        )
        radio_map = build_radio_map(network, LinkBudget())
        allocator = DecentralizedDMRAAllocator(pricing=PRICING)
        allocator.allocate(network, radio_map)
        sp0 = allocator.last_sp_agents[0]
        assert sp0.requests_relayed == 1
        assert sp0.grants_relayed == 1

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            DecentralizedDMRAAllocator(rho=-1.0)
        with pytest.raises(ConfigurationError):
            DecentralizedDMRAAllocator(max_rounds=0)
